"""Topology generators for virtual networks.

Each generator returns a ``networkx.Graph`` whose nodes are hostnames and
whose edges optionally carry ``latency`` (seconds) and ``bandwidth``
(bytes/s) attributes consumed by :class:`~repro.simnet.network.GraphLatency`.

The MAN experiments use :func:`star` (a management station fronting N
devices, the paper's Figure 3 shape); itinerary and messaging experiments
use :func:`ring`, :func:`line` and :func:`tree`.
"""

from __future__ import annotations

import networkx as nx

__all__ = ["star", "ring", "line", "tree", "full_mesh", "random_geometric"]


def _apply_link_attrs(graph: nx.Graph, latency: float, bandwidth: float) -> nx.Graph:
    for _u, _v, data in graph.edges(data=True):
        data.setdefault("latency", latency)
        data.setdefault("bandwidth", bandwidth)
    return graph


def _device_names(count: int, prefix: str) -> list[str]:
    width = max(2, len(str(count)))
    return [f"{prefix}{i:0{width}d}" for i in range(count)]


def star(
    n_devices: int,
    center: str = "station",
    prefix: str = "dev",
    latency: float = 0.0,
    bandwidth: float = 0.0,
) -> nx.Graph:
    """Management station at the hub, *n_devices* spokes."""
    graph = nx.Graph()
    graph.add_node(center)
    for name in _device_names(n_devices, prefix):
        graph.add_edge(center, name)
    return _apply_link_attrs(graph, latency, bandwidth)


def ring(
    n_hosts: int,
    prefix: str = "host",
    latency: float = 0.0,
    bandwidth: float = 0.0,
) -> nx.Graph:
    names = _device_names(n_hosts, prefix)
    graph = nx.Graph()
    for i, name in enumerate(names):
        graph.add_edge(name, names[(i + 1) % n_hosts])
    return _apply_link_attrs(graph, latency, bandwidth)


def line(
    n_hosts: int,
    prefix: str = "host",
    latency: float = 0.0,
    bandwidth: float = 0.0,
) -> nx.Graph:
    names = _device_names(n_hosts, prefix)
    graph = nx.Graph()
    graph.add_node(names[0])
    for i in range(1, n_hosts):
        graph.add_edge(names[i - 1], names[i])
    return _apply_link_attrs(graph, latency, bandwidth)


def tree(
    branching: int,
    depth: int,
    root: str = "root",
    latency: float = 0.0,
    bandwidth: float = 0.0,
) -> nx.Graph:
    """Balanced tree; internal nodes named by their path (root, root-0, …)."""
    graph = nx.Graph()
    graph.add_node(root)
    frontier = [root]
    for _level in range(depth):
        next_frontier: list[str] = []
        for parent in frontier:
            for child_index in range(branching):
                child = f"{parent}-{child_index}"
                graph.add_edge(parent, child)
                next_frontier.append(child)
        frontier = next_frontier
    return _apply_link_attrs(graph, latency, bandwidth)


def full_mesh(
    n_hosts: int,
    prefix: str = "host",
    latency: float = 0.0,
    bandwidth: float = 0.0,
) -> nx.Graph:
    names = _device_names(n_hosts, prefix)
    graph = nx.complete_graph(names)
    return _apply_link_attrs(graph, latency, bandwidth)


def random_geometric(
    n_hosts: int,
    radius: float = 0.4,
    seed: int = 7,
    prefix: str = "host",
    latency: float = 0.0,
    bandwidth: float = 0.0,
) -> nx.Graph:
    """Random geometric graph, relabelled to hostnames; connectivity ensured
    by bridging components along a line."""
    raw = nx.random_geometric_graph(n_hosts, radius, seed=seed)
    names = _device_names(n_hosts, prefix)
    graph = nx.relabel_nodes(raw, dict(enumerate(names)))
    components = [sorted(c) for c in nx.connected_components(graph)]
    for first, second in zip(components, components[1:]):
        graph.add_edge(first[0], second[0])
    return _apply_link_attrs(graph, latency, bandwidth)
