"""Simulated network substrate: hosts, topologies, clock, traffic metering."""

from repro.transport.clock import SimClock
from repro.simnet.host import VirtualHost
from repro.simnet.network import GraphLatency, VirtualNetwork
from repro.simnet.topology import (
    full_mesh,
    line,
    random_geometric,
    ring,
    star,
    tree,
)
from repro.transport.traffic import LinkStats, TrafficMeter

__all__ = [
    "SimClock",
    "TrafficMeter",
    "LinkStats",
    "VirtualHost",
    "VirtualNetwork",
    "GraphLatency",
    "star",
    "ring",
    "line",
    "tree",
    "full_mesh",
    "random_geometric",
]
