"""Virtual network assembly.

A :class:`VirtualNetwork` bundles everything one experiment needs:

- the topology graph (hostnames + links with latency/bandwidth attributes);
- a :class:`GraphLatency` model that routes over shortest paths;
- one shared :class:`InMemoryTransport` with clock and traffic meter;
- the process-wide fixtures servers expect — a
  :class:`~repro.core.credential.SigningAuthority` (stand-in PKI) and a
  :class:`~repro.codeshipping.codebase.CodeBaseRegistry` (codebase host).

Hosts are created from graph nodes; naplet servers attach to hosts (one per
host).  Fault injection and metering are reached through the transport.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Iterator

import networkx as nx

from repro.codeshipping.codebase import CodeBaseRegistry
from repro.core.credential import SigningAuthority
from repro.core.errors import NapletError
from repro.transport.clock import SimClock
from repro.simnet.host import VirtualHost
from repro.transport.traffic import TrafficMeter
from repro.transport.base import host_of
from repro.transport.inmemory import InMemoryTransport
from repro.transport.latency import LatencyModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.plan import FaultPlan

__all__ = ["GraphLatency", "VirtualNetwork"]


class GraphLatency(LatencyModel):
    """Latency model routed over the topology graph.

    One-way delay between two hosts is the sum of edge latencies along the
    shortest (latency-weighted) path, plus transfer time at the bottleneck
    (minimum) bandwidth along that path.  Paths are cached.
    """

    def __init__(self, graph: nx.Graph) -> None:
        self._graph = graph
        self._cache: dict[tuple[str, str], tuple[float, float]] = {}
        self._lock = threading.Lock()

    def _path_params(self, src: str, dst: str) -> tuple[float, float]:
        key = (src, dst)
        with self._lock:
            cached = self._cache.get(key)
        if cached is not None:
            return cached
        try:
            path = nx.shortest_path(self._graph, src, dst, weight="latency")
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            # Unknown or unreachable hosts: charge nothing; reachability is
            # the transport's concern, not the latency model's.
            params = (0.0, 0.0)
            with self._lock:
                self._cache[key] = params
            return params
        latency = 0.0
        bandwidth = float("inf")
        for u, v in zip(path, path[1:]):
            data = self._graph.edges[u, v]
            latency += float(data.get("latency", 0.0))
            bw = float(data.get("bandwidth", 0.0))
            if bw > 0:
                bandwidth = min(bandwidth, bw)
        if bandwidth == float("inf"):
            bandwidth = 0.0
        params = (latency, bandwidth)
        with self._lock:
            self._cache[key] = params
        return params

    def delay(self, src: str, dst: str, nbytes: int) -> float:
        if src == dst:
            return 0.0
        latency, bandwidth = self._path_params(src, dst)
        transfer = (nbytes / bandwidth) if bandwidth > 0 else 0.0
        return latency + transfer


class VirtualNetwork:
    """A topology of virtual hosts sharing one transport and its fixtures."""

    def __init__(
        self,
        graph: nx.Graph,
        latency: LatencyModel | None = None,
        sleep_scale: float = 0.0,
        fault_plan: "FaultPlan | None" = None,
    ) -> None:
        self.graph = graph
        self.clock = SimClock(scale=sleep_scale)
        self.meter = TrafficMeter()
        self.latency = latency if latency is not None else GraphLatency(graph)
        self.transport = InMemoryTransport(
            latency=self.latency, clock=self.clock, meter=self.meter
        )
        self.fault_plan = fault_plan
        if fault_plan is not None:
            # Chaos experiments: every frame in the space crosses the
            # injector.  Healing the plan also flushes dead letters.
            from repro.faults.engine import FaultInjector

            self.transport = FaultInjector(self.transport, fault_plan)
            fault_plan.on_heal(self._requeue_dead_letters)
        self.authority = SigningAuthority()
        self.code_registry = CodeBaseRegistry()
        self._hosts: dict[str, VirtualHost] = {}
        self._lock = threading.Lock()
        for name in graph.nodes:
            self._hosts[str(name)] = VirtualHost(str(name), self)

    # -- hosts ------------------------------------------------------------- #

    def host(self, hostname: str) -> VirtualHost:
        hostname = host_of(hostname)
        with self._lock:
            try:
                return self._hosts[hostname]
            except KeyError:
                raise NapletError(f"no such host in network: {hostname!r}") from None

    def add_host(self, hostname: str, connect_to: str | None = None, **link_attrs: float) -> VirtualHost:
        """Grow the topology at runtime (used by elasticity tests)."""
        with self._lock:
            if hostname in self._hosts:
                raise NapletError(f"host already exists: {hostname!r}")
            self.graph.add_node(hostname)
            if connect_to is not None:
                self.graph.add_edge(hostname, connect_to, **link_attrs)
            host = VirtualHost(hostname, self)
            self._hosts[hostname] = host
            if isinstance(self.latency, GraphLatency):
                # topology changed: drop the path cache
                self.latency._cache.clear()
            return host

    def hostnames(self) -> list[str]:
        with self._lock:
            return sorted(self._hosts)

    def hosts(self) -> Iterator[VirtualHost]:
        for name in self.hostnames():
            yield self.host(name)

    def __contains__(self, hostname: str) -> bool:
        with self._lock:
            return host_of(hostname) in self._hosts

    # -- fault injection (delegated) ----------------------------------------- #

    def fail_link(self, a: str, b: str, symmetric: bool = True) -> None:
        self.transport.fail_link(host_of(a), host_of(b), symmetric)

    def heal_link(self, a: str, b: str, symmetric: bool = True) -> None:
        self.transport.heal_link(host_of(a), host_of(b), symmetric)

    def partition_host(self, hostname: str) -> None:
        self.transport.partition_host(host_of(hostname))

    def heal_host(self, hostname: str) -> None:
        self.transport.heal_host(host_of(hostname))
        if self.fault_plan is not None:
            self.fault_plan.heal_host(host_of(hostname))

    def heal(self) -> None:
        """Clear the fault plan (if any) and requeue dead letters space-wide."""
        if self.fault_plan is not None:
            self.fault_plan.heal()

    def fault_records(self) -> list:
        """Fired-fault annotations, when the transport is a FaultInjector."""
        records = getattr(self.transport, "records", None)
        return records() if callable(records) else []

    def _requeue_dead_letters(self) -> None:
        for host in self.hosts():
            server = host.server
            if server is not None and hasattr(server, "messenger"):
                server.messenger.requeue_dead_letters()

    # -- lifecycle -------------------------------------------------------------- #

    def shutdown(self) -> None:
        """Stop every attached server and close the transport."""
        for host in self.hosts():
            server = host.server
            if server is not None and hasattr(server, "shutdown"):
                server.shutdown()
        self.transport.close()
