"""The perf plane (DESIGN.md §6.6): where bytes and microseconds go.

Three instruments answer "what does a hop cost" and keep the answer
honest over time:

- :mod:`repro.perf.xray` — ``explain_pickle``: decompose a naplet's
  serialized form into per-attribute byte sizes (state vs. itinerary vs.
  trace context vs. shipped code), so a serialization optimisation has a
  provable target before it is written; ``explain_delta``: preview the
  next hop's shipped-vs-skipped split under delta shipping
  (DESIGN.md §6.7);
- :mod:`repro.perf.bench` — the ``BENCH_*.json`` schema v2 (git SHA,
  timestamp, machine fingerprint, append-only history) and the snapshot
  differ that turns two benchmark runs into a regression verdict;
- :mod:`repro.perf.report` — per-hop cost tables rendered from the
  ``perf``-category records the navigator writes into the flight
  recorder on every migration.

``tools/napletperf.py`` is the CLI over all three.
"""

from repro.perf.bench import (
    SCHEMA_VERSION,
    BenchDiff,
    DiffEntry,
    append_history,
    bench_snapshot,
    diff_bench,
    flatten_metrics,
    git_sha,
    load_bench,
    machine_fingerprint,
    metric_direction,
    write_bench,
)
from repro.perf.report import hop_cost_rows, render_hop_costs
from repro.perf.xray import DeltaXray, PickleXray, explain_delta, explain_pickle

__all__ = [
    "SCHEMA_VERSION",
    "BenchDiff",
    "DeltaXray",
    "DiffEntry",
    "PickleXray",
    "append_history",
    "bench_snapshot",
    "diff_bench",
    "explain_delta",
    "explain_pickle",
    "flatten_metrics",
    "git_sha",
    "hop_cost_rows",
    "load_bench",
    "machine_fingerprint",
    "metric_direction",
    "render_hop_costs",
    "write_bench",
]
