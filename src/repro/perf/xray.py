"""Pickle X-ray: per-attribute byte attribution for a serialized naplet.

``explain_pickle(naplet)`` answers "which attribute makes this naplet
heavy on the wire" — state vs. itinerary vs. trace context vs. shipped
code — without changing how the naplet actually serializes.  ROADMAP
item 2 (delta state shipping) needs exactly this decomposition to prove
its target before it is written.

Technique: the naplet's ``__getstate__()`` values are pickled one by one
through a single :class:`~repro.transport.serializer._ShippingPickler`
over one shared buffer, so the pickle memo is shared across attributes
exactly as it is in the real single-shot pickle.  The ``buf.tell()``
delta around each ``dump()`` is that attribute's byte cost.  Per-dump
framing overhead roughly cancels against the dict-key bytes the real
pickle spends, so the attributed sizes sum to within a few percent of
the true payload (the acceptance test holds this at 5%).
"""

from __future__ import annotations

import io
import pickle
from dataclasses import dataclass
from typing import Any

from repro.transport.delta import content_hash, image_hash
from repro.transport.serializer import NapletSerializer, _ShippingPickler

__all__ = ["DeltaXray", "PickleXray", "explain_delta", "explain_pickle"]

# Private attribute slots mapped to the names operators know them by.
_FRIENDLY = {
    "_name": "name",
    "_nid": "naplet_id",
    "_codebase": "codebase_ref",
    "_cred": "credential",
    "_state": "state",
    "_itinerary": "itinerary",
    "_address_book": "address_book",
    "_nav_log": "navigation_log",
    "_listener": "listener",
    "_trace_ctx": "trace_context",
    "_hlc": "hlc",
    "_context": "context",
}


def _friendly(attr: str) -> str:
    return _FRIENDLY.get(attr, attr.lstrip("_") or attr)


@dataclass(frozen=True)
class PickleXray:
    """Byte-level decomposition of one naplet's serialized form.

    ``total`` is the on-wire envelope size; ``payload`` the inner pickled
    object; ``code`` the eager code bundles riding in the envelope (zero
    under lazy shipping); ``envelope`` the wrapper overhead
    (``total - payload - code``).  ``attributes`` maps friendly attribute
    names to the bytes each contributes *within* the payload, and
    ``structure`` is the payload remainder (class reference, dict keys,
    framing) not attributable to any single attribute.
    """

    total: int
    payload: int
    code: int
    envelope: int
    attributes: dict[str, int]
    structure: int

    @property
    def accounted(self) -> int:
        """Bytes attributed to named attributes (excludes structure)."""
        return sum(self.attributes.values())

    @property
    def accounted_fraction(self) -> float:
        """Attributed bytes over true payload size — the 5% honesty check."""
        return self.accounted / self.payload if self.payload else 1.0

    def top(self, count: int = 5) -> list[tuple[str, int]]:
        """The *count* heaviest attributes, largest first."""
        ranked = sorted(self.attributes.items(), key=lambda kv: -kv[1])
        return ranked[:count]

    def describe(self) -> dict[str, Any]:
        """JSON-shaped view (for harvests and the napletperf CLI)."""
        return {
            "total_bytes": self.total,
            "payload_bytes": self.payload,
            "code_bytes": self.code,
            "envelope_bytes": self.envelope,
            "structure_bytes": self.structure,
            "attributes": dict(self.attributes),
        }

    def render(self) -> str:
        """Aligned text table, heaviest attribute first."""
        width = max(
            [len("(envelope overhead)")]
            + [len(name) for name in self.attributes]
        )
        lines = [f"  {'attribute':<{width}} {'bytes':>10} {'% of total':>10}"]

        def row(name: str, nbytes: int) -> str:
            share = 100.0 * nbytes / self.total if self.total else 0.0
            return f"  {name:<{width}} {nbytes:>10} {share:>9.1f}%"

        for name, nbytes in sorted(self.attributes.items(), key=lambda kv: -kv[1]):
            lines.append(row(name, nbytes))
        lines.append(row("(structure)", self.structure))
        if self.code:
            lines.append(row("(shipped code)", self.code))
        lines.append(row("(envelope overhead)", self.envelope))
        lines.append(row("(total)", self.total))
        return "\n".join(lines)


def explain_pickle(
    naplet: Any, serializer: NapletSerializer | None = None
) -> PickleXray:
    """Decompose *naplet*'s serialized form into per-attribute byte sizes.

    *serializer* defaults to a fresh lazy-mode :class:`NapletSerializer`;
    pass the server's own serializer to see eager code bundles accounted
    under ``code``.  Works on anything with ``__getstate__``/``__dict__``,
    but the friendly names target naplets.
    """
    serializer = serializer or NapletSerializer()
    data = serializer.dumps(naplet)
    envelope = pickle.loads(data)
    payload: bytes = envelope["payload"]
    code = sum(
        len(source.encode("utf-8")) for source in envelope["bundles"].values()
    )
    envelope_overhead = max(0, len(data) - len(payload) - code)

    getstate = getattr(naplet, "__getstate__", None)
    state = getstate() if callable(getstate) else dict(naplet.__dict__)
    if not isinstance(state, dict):
        state = {"(state)": state}

    buf = io.BytesIO()
    pickler = _ShippingPickler(buf, serializer._protocol)
    attributes: dict[str, int] = {}
    for attr, value in state.items():
        before = buf.tell()
        try:
            pickler.dump(value)
        except Exception:
            # Unpicklable attribute (would also break the real transfer);
            # attribute zero bytes rather than fail the X-ray.
            attributes[_friendly(attr)] = 0
            continue
        attributes[_friendly(attr)] = buf.tell() - before

    structure = max(0, len(payload) - sum(attributes.values()))
    return PickleXray(
        total=len(data),
        payload=len(payload),
        code=code,
        envelope=envelope_overhead,
        attributes=attributes,
        structure=structure,
    )


@dataclass(frozen=True)
class DeltaXray:
    """What the delta fast path would ship on this naplet's next hop.

    Compares the naplet's *current* per-field pickle against the base
    image in *serializer*'s delta cache (the last image dumped or landed
    here).  ``shipped`` maps changed fields to the bytes they would put
    on the wire; ``skipped`` maps unchanged fields to the bytes the delta
    keeps off it.  Without a cached base every field ships
    (``base_hash`` is None — the first hop is always a full image).
    """

    base_hash: str | None
    image_hash: str
    shipped: dict[str, int]
    skipped: dict[str, int]

    @property
    def shipped_bytes(self) -> int:
        return sum(self.shipped.values())

    @property
    def saved_bytes(self) -> int:
        return sum(self.skipped.values())

    @property
    def saved_fraction(self) -> float:
        total = self.shipped_bytes + self.saved_bytes
        return self.saved_bytes / total if total else 0.0

    def describe(self) -> dict[str, Any]:
        return {
            "base_hash": self.base_hash,
            "image_hash": self.image_hash,
            "shipped_bytes": self.shipped_bytes,
            "saved_bytes": self.saved_bytes,
            "shipped": dict(self.shipped),
            "skipped": dict(self.skipped),
        }

    def render(self) -> str:
        """Aligned text table: what ships, what the base cache saves."""
        names = list(self.shipped) + list(self.skipped) + ["(total)"]
        width = max(len(name) for name in names)
        lines = [
            "  next hop ships a "
            + ("delta against base " + self.base_hash[:12] if self.base_hash else "full image (no cached base)"),
            f"  {'attribute':<{width}} {'bytes':>10}  {'fate'}",
        ]
        for name, nbytes in sorted(self.shipped.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {name:<{width}} {nbytes:>10}  ships")
        for name, nbytes in sorted(self.skipped.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {name:<{width}} {nbytes:>10}  cached (saved)")
        lines.append(
            f"  {'(total)':<{width}} {self.shipped_bytes:>10}  "
            f"on the wire, {self.saved_bytes} saved "
            f"({100.0 * self.saved_fraction:.1f}%)"
        )
        return "\n".join(lines)


def explain_delta(naplet: Any, serializer: NapletSerializer) -> DeltaXray:
    """Preview *naplet*'s next hop under delta shipping — a pure probe.

    Pickles each ``__getstate__`` field independently (same technique as
    :func:`explain_pickle`, but per-field picklers to mirror the v2
    envelope exactly) and splits them into shipped-vs-skipped against the
    base image ``serializer.delta_cache`` holds.  Nothing is mutated: the
    cache is peeked, not promoted, and dirty flags stay as they are.
    """
    getstate = getattr(naplet, "__getstate__", None)
    state = getstate() if callable(getstate) else dict(naplet.__dict__)
    if not isinstance(state, dict):
        state = {"(state)": state}
    nid = str(naplet.naplet_id) if getattr(naplet, "has_id", False) else ""
    prev = serializer.delta_cache.peek(nid) if nid else None
    prev_hashes = prev.field_hashes() if prev is not None else {}

    shipped: dict[str, int] = {}
    skipped: dict[str, int] = {}
    field_hashes: dict[str, str] = {}
    for attr, value in state.items():
        buf = io.BytesIO()
        try:
            _ShippingPickler(buf, serializer._protocol, root=naplet).dump(value)
        except Exception:
            shipped[_friendly(attr)] = 0  # v2 would bail to v1 here anyway
            continue
        data = buf.getvalue()
        digest = content_hash(data)
        field_hashes[attr] = digest
        if prev_hashes.get(attr) == digest:
            skipped[_friendly(attr)] = len(data)
        else:
            shipped[_friendly(attr)] = len(data)
    return DeltaXray(
        base_hash=prev.hash if prev is not None else None,
        image_hash=image_hash(field_hashes),
        shipped=shipped,
        skipped=skipped,
    )
