"""BENCH_*.json schema v2 and the benchmark-regression differ.

Schema v2 wraps the benchmark's own metrics in provenance metadata —
``schema_version``, ``experiment``, ``timestamp`` (UTC ISO-8601),
``git_sha``, and a ``machine`` fingerprint — so two snapshots can be
compared honestly: a 30% "regression" measured on a laptop against a CI
box is noise, and the fingerprint makes that visible.  Snapshots append
into a history directory (one file per run, never overwritten), giving
every later scale PR a trend line to regress against.

``diff_bench`` turns two snapshots into per-metric verdicts.  Direction
is inferred from the metric name (``*_ms``/``*latency*`` are
lower-is-better; ``*_per_sec``/``*speedup*`` higher-is-better; counts
are informational), and ``structural_only`` restricts the comparison to
timing-independent metrics (frame counts, connection counts, bytes) so
CI can gate on protocol regressions without flaking on machine speed.
"""

from __future__ import annotations

import json
import os
import platform
import socket
import subprocess
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

__all__ = [
    "SCHEMA_VERSION",
    "BenchDiff",
    "DiffEntry",
    "append_history",
    "bench_snapshot",
    "diff_bench",
    "flatten_metrics",
    "git_sha",
    "load_bench",
    "machine_fingerprint",
    "metric_direction",
    "write_bench",
]

SCHEMA_VERSION = 2

# Keys that are snapshot metadata, not benchmark metrics.
_META_KEYS = frozenset(
    {"schema_version", "experiment", "timestamp", "git_sha", "machine"}
)

_LOWER_BETTER = ("_ms", "_s", "_seconds", "_us")
_LOWER_BETTER_SUBSTR = ("latency", "overhead", "per_hop", "connections", "dials")
_HIGHER_BETTER_SUBSTR = ("per_sec", "speedup", "throughput")
_TIMING_MARKERS = ("_ms", "_s", "_seconds", "_us", "latency", "per_sec", "speedup", "throughput")
# Byte-count metrics that read like rates but are pure protocol facts:
# wire bytes per migration hop do not depend on machine speed, so CI's
# structural gate must compare them (lower is better — the delta-shipping
# benchmark regresses through exactly this key).
_STRUCTURAL_BYTES_SUBSTR = ("bytes_per_hop",)


# --------------------------------------------------------------------- #
# Provenance
# --------------------------------------------------------------------- #


def machine_fingerprint() -> dict[str, Any]:
    """Enough about this machine to judge snapshot comparability."""
    return {
        "hostname": socket.gethostname(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
    }


def git_sha(root: str | Path | None = None) -> str | None:
    """HEAD commit of the repo at *root* (default: this repo); None outside git."""
    root = Path(root) if root else Path(__file__).resolve().parents[3]
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=10,
        )
        if out.returncode == 0:
            return out.stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        pass
    # No git binary: resolve .git/HEAD by hand (best effort).
    try:
        head = (root / ".git" / "HEAD").read_text().strip()
        if head.startswith("ref:"):
            ref = head.split(None, 1)[1]
            return (root / ".git" / ref).read_text().strip()
        return head or None
    except OSError:
        return None


# --------------------------------------------------------------------- #
# Snapshots
# --------------------------------------------------------------------- #


def bench_snapshot(
    experiment: str,
    data: dict[str, Any],
    *,
    timestamp: float | None = None,
    root: str | Path | None = None,
) -> dict[str, Any]:
    """Wrap benchmark *data* in a schema-v2 snapshot with provenance."""
    wall = time.time() if timestamp is None else timestamp
    snapshot: dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "experiment": experiment,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(wall)),
        "git_sha": git_sha(root),
        "machine": machine_fingerprint(),
    }
    for key, value in data.items():
        if key in _META_KEYS:
            continue
        snapshot[key] = value
    return snapshot


def write_bench(
    path: str | Path,
    experiment: str,
    data: dict[str, Any],
    *,
    history_dir: str | Path | None = None,
    timestamp: float | None = None,
) -> dict[str, Any]:
    """Write a schema-v2 snapshot to *path*; optionally append to history.

    Returns the snapshot dict.  With *history_dir* set, a copy lands in
    that directory under a timestamped, never-reused filename — the
    append-only trend line.
    """
    snapshot = bench_snapshot(experiment, data, timestamp=timestamp)
    path = Path(path)
    path.write_text(json.dumps(snapshot, indent=2, sort_keys=False) + "\n")
    if history_dir is not None:
        append_history(history_dir, snapshot)
    return snapshot


def append_history(history_dir: str | Path, snapshot: dict[str, Any]) -> Path:
    """Append *snapshot* into *history_dir* without clobbering prior runs."""
    history = Path(history_dir)
    history.mkdir(parents=True, exist_ok=True)
    stamp = str(snapshot.get("timestamp", "unknown")).replace(":", "").replace("-", "")
    sha = str(snapshot.get("git_sha") or "nogit")[:10]
    base = f"{_slug(snapshot.get('experiment', 'bench'))}_{stamp}_{sha}"
    target = history / f"{base}.json"
    serial = 1
    while target.exists():
        target = history / f"{base}_{serial}.json"
        serial += 1
    target.write_text(json.dumps(snapshot, indent=2) + "\n")
    return target


def _slug(text: Any) -> str:
    return "".join(c if c.isalnum() else "-" for c in str(text)).strip("-") or "bench"


def load_bench(path: str | Path) -> dict[str, Any]:
    """Load a snapshot; schema-v1 files (no metadata) are upgraded in memory."""
    raw = json.loads(Path(path).read_text())
    if not isinstance(raw, dict):
        raise ValueError(f"{path}: not a benchmark snapshot")
    if raw.get("schema_version") is None:
        upgraded = {
            "schema_version": 1,
            "experiment": raw.get("experiment", Path(path).stem),
            "timestamp": None,
            "git_sha": None,
            "machine": None,
        }
        upgraded.update({k: v for k, v in raw.items() if k not in _META_KEYS})
        return upgraded
    return raw


def flatten_metrics(snapshot: dict[str, Any]) -> dict[str, float]:
    """Numeric leaves of a snapshot as ``dotted.path -> value`` (metadata skipped)."""
    flat: dict[str, float] = {}

    def walk(prefix: str, node: Any) -> None:
        if isinstance(node, dict):
            for key, value in node.items():
                walk(f"{prefix}.{key}" if prefix else str(key), value)
        elif isinstance(node, bool):
            return
        elif isinstance(node, (int, float)):
            flat[prefix] = float(node)

    for key, value in snapshot.items():
        if key in _META_KEYS:
            continue
        walk(str(key), value)
    return flat


# --------------------------------------------------------------------- #
# Diffing
# --------------------------------------------------------------------- #


def metric_direction(key: str) -> str:
    """'lower', 'higher', or 'neutral' — which way is better for *key*."""
    leaf = key.rsplit(".", 1)[-1].lower()
    if any(marker in leaf for marker in _STRUCTURAL_BYTES_SUBSTR):
        return "lower"
    if any(marker in leaf for marker in _HIGHER_BETTER_SUBSTR):
        return "higher"
    if leaf.endswith(_LOWER_BETTER):
        return "lower"
    if any(marker in leaf for marker in _LOWER_BETTER_SUBSTR):
        return "lower"
    return "neutral"


def is_timing_metric(key: str) -> bool:
    """True for wall-clock-dependent metrics (excluded by ``structural_only``)."""
    leaf = key.rsplit(".", 1)[-1].lower()
    if any(marker in leaf for marker in _STRUCTURAL_BYTES_SUBSTR):
        return False
    return leaf.endswith(_LOWER_BETTER) or any(
        marker in leaf for marker in ("latency", "per_sec", "speedup", "throughput")
    )


@dataclass(frozen=True)
class DiffEntry:
    """One metric compared across two snapshots."""

    key: str
    old: float | None
    new: float | None
    change: float  # signed fraction, new vs old (0.3 = 30% larger)
    direction: str  # lower | higher | neutral
    verdict: str  # ok | regression | improvement | new | removed | info

    def describe(self) -> str:
        arrow = {"regression": "REGRESSION", "improvement": "better"}.get(
            self.verdict, self.verdict
        )
        if self.old is None:
            return f"{self.key}: (new) {self.new:g}"
        if self.new is None:
            return f"{self.key}: (removed, was {self.old:g})"
        return (
            f"{self.key}: {self.old:g} -> {self.new:g} "
            f"({self.change * 100:+.1f}%) {arrow}"
        )


@dataclass(frozen=True)
class BenchDiff:
    """All per-metric verdicts between two snapshots."""

    entries: list[DiffEntry]
    tolerance: float

    @property
    def regressions(self) -> list[DiffEntry]:
        return [e for e in self.entries if e.verdict == "regression"]

    @property
    def improvements(self) -> list[DiffEntry]:
        return [e for e in self.entries if e.verdict == "improvement"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        lines = [
            f"  {len(self.entries)} metrics compared, tolerance "
            f"{self.tolerance * 100:.0f}%: "
            f"{len(self.regressions)} regression(s), "
            f"{len(self.improvements)} improvement(s)"
        ]
        order = {"regression": 0, "improvement": 1, "new": 2, "removed": 3}
        for entry in sorted(
            self.entries, key=lambda e: (order.get(e.verdict, 4), e.key)
        ):
            marker = "!!" if entry.verdict == "regression" else "  "
            lines.append(f"  {marker} {entry.describe()}")
        return "\n".join(lines)


def diff_bench(
    old: dict[str, Any],
    new: dict[str, Any],
    tolerance: float = 0.2,
    structural_only: bool = False,
) -> BenchDiff:
    """Compare two snapshots metric by metric.

    A metric regresses when it moves against its direction by more than
    *tolerance* (a fraction; 0.2 = 20%).  Neutral-direction metrics never
    regress — they report as ``info`` when changed, ``ok`` when stable.
    With *structural_only*, timing metrics are skipped entirely.
    """
    old_flat = flatten_metrics(old)
    new_flat = flatten_metrics(new)
    entries: list[DiffEntry] = []
    for key in sorted(set(old_flat) | set(new_flat)):
        if structural_only and is_timing_metric(key):
            continue
        a, b = old_flat.get(key), new_flat.get(key)
        if a is None:
            entries.append(DiffEntry(key, None, b, 0.0, metric_direction(key), "new"))
            continue
        if b is None:
            entries.append(
                DiffEntry(key, a, None, 0.0, metric_direction(key), "removed")
            )
            continue
        change = (b - a) / a if a else (0.0 if b == a else 1.0)
        direction = metric_direction(key)
        if direction == "lower":
            worse, better = change > tolerance, change < -tolerance
        elif direction == "higher":
            worse, better = change < -tolerance, change > tolerance
        else:
            worse = better = False
        if worse:
            verdict = "regression"
        elif better:
            verdict = "improvement"
        elif direction == "neutral" and abs(change) > tolerance:
            verdict = "info"
        else:
            verdict = "ok"
        entries.append(DiffEntry(key, a, b, change, direction, verdict))
    return BenchDiff(entries=entries, tolerance=tolerance)
