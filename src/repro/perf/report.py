"""Per-hop cost tables from the flight recorder's ``perf`` records.

The navigator journals a ``hop-cost`` record (category ``perf``) on
every successful migration, carrying the serialize time and the
payload/header/code byte split of that hop.  This module turns a
harvested record stream — live :class:`~repro.telemetry.journal`
records or the dicts a ``napletlog`` dump file holds — into the table
``napletperf hops`` renders.
"""

from __future__ import annotations

from typing import Any

__all__ = ["hop_cost_rows", "render_hop_costs"]


def _detail(record: Any) -> dict[str, Any]:
    if isinstance(record, dict):
        detail = record.get("detail")
        return detail if isinstance(detail, dict) else {}
    return dict(getattr(record, "detail", None) or {})


def _field(record: Any, name: str, default: Any = None) -> Any:
    if isinstance(record, dict):
        return record.get(name, default)
    return getattr(record, name, default)


def hop_cost_rows(
    records: list[Any], naplet: str | None = None
) -> list[dict[str, Any]]:
    """Extract hop-cost rows from journal *records* (objects or dicts).

    Only ``kind == "hop-cost"`` records survive; with *naplet* set, only
    that naplet's hops.  Rows keep the records' causal order.
    """
    rows: list[dict[str, Any]] = []
    for record in records:
        if _field(record, "kind") != "hop-cost":
            continue
        if naplet is not None and _field(record, "naplet") != naplet:
            continue
        detail = _detail(record)
        rows.append(
            {
                "naplet": _field(record, "naplet"),
                "source": detail.get("source", "?"),
                "dest": detail.get("dest", "?"),
                "serialize_s": float(detail.get("serialize_s", 0.0)),
                "payload_bytes": int(detail.get("payload_bytes", 0)),
                "header_bytes": int(detail.get("header_bytes", 0)),
                "code_bytes": int(detail.get("code_bytes", 0)),
                "total_bytes": int(detail.get("total_bytes", 0)),
                "fast_path": bool(detail.get("fast_path", False)),
                "delta": bool(detail.get("delta", False)),
                "saved_bytes": int(detail.get("saved_bytes", 0)),
            }
        )
    return rows


def render_hop_costs(records: list[Any], naplet: str | None = None) -> str:
    """Aligned per-hop cost table (one row per migration, plus totals)."""
    rows = hop_cost_rows(records, naplet=naplet)
    scope = f" for {naplet}" if naplet else ""
    if not rows:
        return (
            f"  no hop-cost records{scope} — journal disabled, "
            "or the naplet has not migrated yet"
        )
    lines = [
        f"  {len(rows)} hop(s){scope}",
        f"  {'route':<24} {'total-B':>9} {'payload':>9} {'header':>8} "
        f"{'code':>7} {'saved':>8} {'ser-ms':>8} {'path':<5}",
    ]
    totals = {
        "total_bytes": 0,
        "payload_bytes": 0,
        "header_bytes": 0,
        "code_bytes": 0,
        "saved_bytes": 0,
    }
    serialize = 0.0
    for row in rows:
        route = f"{row['source']} -> {row['dest']}"
        path = "fast" if row["fast_path"] else "2ph"
        if row["delta"]:
            path += "+d"
        lines.append(
            f"  {route:<24} {row['total_bytes']:>9} {row['payload_bytes']:>9} "
            f"{row['header_bytes']:>8} {row['code_bytes']:>7} "
            f"{row['saved_bytes']:>8} "
            f"{row['serialize_s'] * 1e3:>8.2f} "
            f"{path:<5}"
        )
        for key in totals:
            totals[key] += row[key]
        serialize += row["serialize_s"]
    lines.append(
        f"  {'(all hops)':<24} {totals['total_bytes']:>9} "
        f"{totals['payload_bytes']:>9} {totals['header_bytes']:>8} "
        f"{totals['code_bytes']:>7} {totals['saved_bytes']:>8} "
        f"{serialize * 1e3:>8.2f}"
    )
    return "\n".join(lines)
