"""Wire layer: frames, transports, latency models, and serialization."""

from repro.transport.base import Frame, FrameKind, Transport, host_of, urn_of
from repro.transport.inmemory import InMemoryTransport
from repro.transport.latency import (
    LatencyModel,
    PerLinkLatency,
    UniformLatency,
    ZeroLatency,
)
from repro.transport.pool import ConnectionPool, PooledConnection
from repro.transport.serializer import NapletSerializer
from repro.transport.tcp import TcpTransport

__all__ = [
    "Frame",
    "FrameKind",
    "Transport",
    "InMemoryTransport",
    "TcpTransport",
    "ConnectionPool",
    "PooledConnection",
    "NapletSerializer",
    "LatencyModel",
    "ZeroLatency",
    "UniformLatency",
    "PerLinkLatency",
    "urn_of",
    "host_of",
]
