"""Localhost TCP transport.

Proves the Naplet wire protocol over real sockets.  Each registered
endpoint gets a listening socket on 127.0.0.1; connections are persistent
and multiplexed: a client-side :class:`~repro.transport.pool.ConnectionPool`
keeps one keepalive socket per destination URN, frames carry correlation
ids so many concurrent ``request()``s share that socket, and the server
side serves many frames per connection, dispatching handler work to a
bounded per-endpoint worker pool instead of spawning a thread per accept.

The legacy one-frame-per-connection envelope ``(frame, expects_reply)`` is
still accepted (and produced with ``pooled=False``), so a pooled server
interoperates with an unpooled client — the benchmark baseline.

Caveat for reentrant handlers: handler work runs on a bounded pool
(``server_workers`` per endpoint), so deeply nested request chains that
revisit the *same* endpoint more times than it has workers can starve.
Forwarding chains are hop-bounded well below the default, and distinct
endpoints use distinct pools.
"""

from __future__ import annotations

import pickle
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.core.errors import NapletCommunicationError
from repro.transport import pool as _poolmod
from repro.transport.base import Frame, FrameHandler, Transport
from repro.transport.pool import (
    ConnectionPool,
    ERR,
    REP,
    REQ,
    REQB,
    recv_blob,
    recv_segments,
    send_blob,
)

__all__ = ["TcpTransport"]

_MAX_FRAME = _poolmod.MAX_FRAME  # re-exported for tests predating pool.py


class _Endpoint:
    """Listening socket + accept loop + bounded worker pool for one URN."""

    def __init__(self, urn: str, handler: FrameHandler, transport: "TcpTransport") -> None:
        self.urn = urn
        self.handler = handler
        self._transport = transport
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(64)
        self.port = self.sock.getsockname()[1]
        self._closing = threading.Event()
        self._conns: set[socket.socket] = set()
        self._conns_lock = threading.Lock()
        self._workers = ThreadPoolExecutor(
            max_workers=transport.server_workers, thread_name_prefix=f"tcp-work-{urn}"
        )
        self._thread = threading.Thread(
            target=self._accept_loop, name=f"tcp-accept-{urn}", daemon=True
        )
        self._thread.start()

    def _accept_loop(self) -> None:
        while not self._closing.is_set():
            try:
                conn, _addr = self.sock.accept()
            except OSError:
                return  # socket closed
            try:
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
            with self._conns_lock:
                self._conns.add(conn)
            threading.Thread(
                target=self._serve, args=(conn,), name=f"tcp-conn-{self.urn}", daemon=True
            ).start()

    def _serve(self, conn: socket.socket) -> None:
        """Serve frames on one connection until the peer closes it.

        Multiplexed requests are handed to the worker pool and replied to
        out of order, tagged by correlation id; the legacy envelope serves
        one frame and closes, as the old protocol did.
        """
        write_lock = threading.Lock()
        try:
            with conn:
                while not self._closing.is_set():
                    blob = recv_blob(conn, allow_eof=True)
                    if blob is None:
                        break  # clean close at a frame boundary
                    self._transport._account_received(self.urn, len(blob))
                    envelope = pickle.loads(blob)
                    if len(envelope) == 5 and envelope[0] == REQB:
                        # Segmented request: raw out-of-band buffers follow
                        # the header blob on the same connection (the sender
                        # holds its write lock across the whole message).
                        _tag, cid, frame, expects_reply, sizes = envelope
                        frame.buffers = recv_segments(conn, sizes)
                        self._transport._account_received(
                            self.urn, sum(b.nbytes for b in frame.buffers)
                        )
                        self._workers.submit(
                            self._handle_one, conn, write_lock, cid, frame, expects_reply
                        )
                    elif len(envelope) == 4 and envelope[0] == REQ:
                        _tag, cid, frame, expects_reply = envelope
                        self._workers.submit(
                            self._handle_one, conn, write_lock, cid, frame, expects_reply
                        )
                    else:
                        frame, expects_reply = envelope
                        reply = self.handler(frame)
                        if expects_reply:
                            out = pickle.dumps(reply if reply is not None else b"")
                            send_blob(conn, out)
                            self._transport._account_sent(self.urn, len(out))
                        break
        except Exception as exc:
            # Connection-scoped failure (bad frame, handler error, dead
            # peer): the connection is dropped, but not silently — the
            # transport counts it and records it in the bound EventLog.
            self._transport._record_connection_error(self.urn, exc)
        finally:
            with self._conns_lock:
                self._conns.discard(conn)

    def _handle_one(
        self,
        conn: socket.socket,
        write_lock: threading.Lock,
        cid: int,
        frame: Frame,
        expects_reply: bool,
    ) -> None:
        try:
            reply = self.handler(frame)
        except Exception as exc:
            if not expects_reply:
                self._transport._record_connection_error(self.urn, exc)
                return
            # A handler failure poisons only this request, not the shared
            # connection: the caller gets a correlated error reply.
            blob = pickle.dumps((ERR, cid, f"{type(exc).__name__}: {exc}"))
        else:
            if not expects_reply:
                return
            blob = pickle.dumps((REP, cid, reply if reply is not None else b""))
        try:
            with write_lock:
                send_blob(conn, blob)
            self._transport._account_sent(self.urn, len(blob))
        except OSError:
            pass  # requester already gone; it will time out on its side

    def drop_connections(self) -> None:
        """Close every live served connection (keepalive churn / shutdown)."""
        with self._conns_lock:
            conns = list(self._conns)
        for conn in conns:
            # shutdown() (not just close()) sends FIN and wakes any thread
            # blocked in recv() on this socket.
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass

    def close(self) -> None:
        self._closing.set()
        try:
            self.sock.close()
        except OSError:
            pass
        self.drop_connections()
        self._workers.shutdown(wait=False)


class TcpTransport(Transport):
    """Frame router over localhost TCP sockets with pooled connections."""

    def __init__(
        self,
        connect_timeout: float = 5.0,
        pooled: bool = True,
        server_workers: int = 8,
    ) -> None:
        super().__init__()
        self._endpoints: dict[str, _Endpoint] = {}
        self._ports: dict[str, int] = {}
        self._connect_timeout = connect_timeout
        self._eplock = threading.RLock()
        self.pooled = pooled
        self.server_workers = server_workers
        self._pool: ConnectionPool | None = (
            ConnectionPool(
                dialer=self._connect,
                on_open=self._note_connection_opened,
                on_reuse=self._note_connection_reused,
                on_traffic=self._pool_traffic,
            )
            if pooled
            else None
        )

    def _pool_traffic(self, frame: Frame, sent: int, received: int) -> None:
        """Attribute a pooled exchange's wire bytes to the sending endpoint."""
        self._account_sent(frame.source, sent)
        if received:
            self._account_received(frame.source, received)

    @property
    def pool(self) -> ConnectionPool | None:
        return self._pool

    def register(self, urn: str, handler: FrameHandler) -> None:
        super().register(urn, handler)
        endpoint = _Endpoint(urn, handler, self)
        with self._eplock:
            self._endpoints[urn] = endpoint
            self._ports[urn] = endpoint.port

    def unregister(self, urn: str) -> None:
        super().unregister(urn)
        with self._eplock:
            endpoint = self._endpoints.pop(urn, None)
            self._ports.pop(urn, None)
        if endpoint is not None:
            endpoint.close()

    def port_of(self, urn: str) -> int:
        with self._eplock:
            try:
                return self._ports[urn]
            except KeyError:
                raise NapletCommunicationError(f"no endpoint registered at {urn}") from None

    def worker_backlog(self, urn: str | None = None) -> int:
        """Frames queued behind the inbound worker pool(s), not yet served.

        The health plane's wedged-server rule polls this: a sustained
        non-zero backlog means every ``server_workers`` thread is busy and
        requests are waiting.  ``urn`` restricts the count to one
        endpoint; the default sums the whole transport.
        """
        with self._eplock:
            endpoints = (
                [self._endpoints[urn]]
                if urn is not None and urn in self._endpoints
                else list(self._endpoints.values()) if urn is None else []
            )
        backlog = 0
        for endpoint in endpoints:
            queue = getattr(endpoint._workers, "_work_queue", None)
            if queue is not None:
                backlog += queue.qsize()
        return backlog

    def live_peers(self, source_urn: str) -> list[str]:
        """Destinations with a live pooled keepalive (unpooled: none).

        The pool is shared by every endpoint of this transport object, so
        this is the opportunistic superset of peers *some* local endpoint
        has talked to — exactly the connections a heartbeat rides for free.
        """
        if self._pool is None:
            return []
        return [d for d in self._pool.live_destinations() if d != source_urn]

    def _connect(self, urn: str) -> socket.socket:
        port = self.port_of(urn)
        try:
            sock = socket.create_connection(("127.0.0.1", port), timeout=self._connect_timeout)
        except OSError as exc:
            raise NapletCommunicationError(f"cannot reach {urn}: {exc}") from exc
        return sock

    def send(self, frame: Frame) -> None:
        started = time.monotonic()
        if self._pool is not None:
            self._pool.send(frame)
        else:
            sock = self._connect(frame.dest)
            self._note_connection_opened(frame.dest)
            try:
                with sock:
                    blob = pickle.dumps((frame.picklable(), False))
                    send_blob(sock, blob)
                    self._account_sent(frame.source, len(blob))
            except OSError as exc:
                raise NapletCommunicationError(f"send to {frame.dest} failed: {exc}") from exc
        self._observe_wire(frame, time.monotonic() - started)

    def request(self, frame: Frame, timeout: float | None = None) -> bytes:
        started = time.monotonic()
        if self._pool is not None:
            reply = self._pool.request(frame, timeout)
        else:
            sock = self._connect(frame.dest)
            self._note_connection_opened(frame.dest)
            try:
                with sock:
                    if timeout is not None:
                        sock.settimeout(timeout)
                    blob = pickle.dumps((frame.picklable(), True))
                    send_blob(sock, blob)
                    self._account_sent(frame.source, len(blob))
                    raw = recv_blob(sock)
                    self._account_received(frame.source, len(raw))
                    reply = pickle.loads(raw)
            except socket.timeout as exc:
                raise NapletCommunicationError(f"request to {frame.dest} timed out") from exc
            except OSError as exc:
                raise NapletCommunicationError(f"request to {frame.dest} failed: {exc}") from exc
        self._observe_wire(frame, time.monotonic() - started)
        return reply

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
        with self._eplock:
            endpoints = list(self._endpoints.values())
            self._endpoints.clear()
            self._ports.clear()
        for endpoint in endpoints:
            endpoint.close()
