"""Localhost TCP transport.

Proves the Naplet wire protocol over real sockets: each registered endpoint
gets a listening socket on 127.0.0.1 and an accept loop; frames travel as
length-prefixed pickled tuples; ``request`` keeps the connection open for
the reply.  Intended for integration tests and small deployments — the
large-scale experiments use the in-memory transport.
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading
import time

from repro.core.errors import NapletCommunicationError
from repro.transport.base import Frame, FrameHandler, Transport

__all__ = ["TcpTransport"]

_LEN = struct.Struct("!I")
_MAX_FRAME = 64 * 1024 * 1024


def _send_blob(sock: socket.socket, blob: bytes) -> None:
    sock.sendall(_LEN.pack(len(blob)) + blob)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks: list[bytes] = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            raise NapletCommunicationError("peer closed the connection mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _recv_blob(sock: socket.socket) -> bytes:
    (length,) = _LEN.unpack(_recv_exact(sock, _LEN.size))
    if length > _MAX_FRAME:
        raise NapletCommunicationError(f"frame too large: {length} bytes")
    return _recv_exact(sock, length)


class _Endpoint:
    """Listening socket + accept loop for one registered URN."""

    def __init__(self, urn: str, handler: FrameHandler) -> None:
        self.urn = urn
        self.handler = handler
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(64)
        self.port = self.sock.getsockname()[1]
        self._closing = threading.Event()
        self._thread = threading.Thread(
            target=self._accept_loop, name=f"tcp-accept-{urn}", daemon=True
        )
        self._thread.start()

    def _accept_loop(self) -> None:
        while not self._closing.is_set():
            try:
                conn, _addr = self.sock.accept()
            except OSError:
                return  # socket closed
            threading.Thread(
                target=self._serve, args=(conn,), name=f"tcp-conn-{self.urn}", daemon=True
            ).start()

    def _serve(self, conn: socket.socket) -> None:
        try:
            with conn:
                blob = _recv_blob(conn)
                frame, expects_reply = pickle.loads(blob)
                reply = self.handler(frame)
                if expects_reply:
                    _send_blob(conn, pickle.dumps(reply if reply is not None else b""))
        except Exception:
            # Connection-scoped failure (bad frame, handler error, dead
            # peer): drop this connection; the requester times out or sees
            # a communication error. The accept loop keeps serving.
            return

    def close(self) -> None:
        self._closing.set()
        try:
            self.sock.close()
        except OSError:
            pass


class TcpTransport(Transport):
    """Frame router over localhost TCP sockets."""

    def __init__(self, connect_timeout: float = 5.0) -> None:
        super().__init__()
        self._endpoints: dict[str, _Endpoint] = {}
        self._ports: dict[str, int] = {}
        self._connect_timeout = connect_timeout
        self._eplock = threading.RLock()

    def register(self, urn: str, handler: FrameHandler) -> None:
        super().register(urn, handler)
        endpoint = _Endpoint(urn, handler)
        with self._eplock:
            self._endpoints[urn] = endpoint
            self._ports[urn] = endpoint.port

    def unregister(self, urn: str) -> None:
        super().unregister(urn)
        with self._eplock:
            endpoint = self._endpoints.pop(urn, None)
            self._ports.pop(urn, None)
        if endpoint is not None:
            endpoint.close()

    def port_of(self, urn: str) -> int:
        with self._eplock:
            try:
                return self._ports[urn]
            except KeyError:
                raise NapletCommunicationError(f"no endpoint registered at {urn}") from None

    def _connect(self, urn: str) -> socket.socket:
        port = self.port_of(urn)
        try:
            sock = socket.create_connection(("127.0.0.1", port), timeout=self._connect_timeout)
        except OSError as exc:
            raise NapletCommunicationError(f"cannot reach {urn}: {exc}") from exc
        return sock

    def send(self, frame: Frame) -> None:
        started = time.monotonic()
        sock = self._connect(frame.dest)
        try:
            with sock:
                _send_blob(sock, pickle.dumps((frame, False)))
        except OSError as exc:
            raise NapletCommunicationError(f"send to {frame.dest} failed: {exc}") from exc
        self._observe_wire(frame, time.monotonic() - started)

    def request(self, frame: Frame, timeout: float | None = None) -> bytes:
        started = time.monotonic()
        sock = self._connect(frame.dest)
        try:
            with sock:
                if timeout is not None:
                    sock.settimeout(timeout)
                _send_blob(sock, pickle.dumps((frame, True)))
                reply = pickle.loads(_recv_blob(sock))
        except socket.timeout as exc:
            raise NapletCommunicationError(f"request to {frame.dest} timed out") from exc
        except OSError as exc:
            raise NapletCommunicationError(f"request to {frame.dest} failed: {exc}") from exc
        self._observe_wire(frame, time.monotonic() - started)
        return reply

    def close(self) -> None:
        with self._eplock:
            endpoints = list(self._endpoints.values())
            self._endpoints.clear()
            self._ports.clear()
        for endpoint in endpoints:
            endpoint.close()
