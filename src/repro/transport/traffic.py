"""Traffic metering for the simulated network.

Every frame that crosses the in-memory transport is accounted here:
per-link byte/frame counts, per-host ingress/egress, per-kind totals and
accumulated virtual latency.  The MAN experiments (E3/E4) read their
"network load" series straight from these counters, so the meter is the
measurement instrument of the reproduction.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

__all__ = ["LinkStats", "TrafficMeter"]


@dataclass
class LinkStats:
    """Counters for one directed (src, dst) link."""

    frames: int = 0
    bytes: int = 0
    virtual_seconds: float = 0.0

    def add(self, nbytes: int, delay: float) -> None:
        self.frames += 1
        self.bytes += nbytes
        self.virtual_seconds += delay


class TrafficMeter:
    """Thread-safe traffic accounting across the whole virtual network."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._links: dict[tuple[str, str], LinkStats] = {}
        self._by_kind: dict[str, LinkStats] = {}
        self._total = LinkStats()

    def record(self, src: str, dst: str, kind: str, nbytes: int, delay: float) -> None:
        with self._lock:
            link = self._links.setdefault((src, dst), LinkStats())
            link.add(nbytes, delay)
            by_kind = self._by_kind.setdefault(kind, LinkStats())
            by_kind.add(nbytes, delay)
            self._total.add(nbytes, delay)

    # -- queries ----------------------------------------------------------- #

    def link(self, src: str, dst: str) -> LinkStats:
        with self._lock:
            stats = self._links.get((src, dst))
            return LinkStats(stats.frames, stats.bytes, stats.virtual_seconds) if stats else LinkStats()

    def host_bytes(self, host: str) -> tuple[int, int]:
        """(egress, ingress) byte totals for *host*."""
        egress = ingress = 0
        with self._lock:
            for (src, dst), stats in self._links.items():
                if src == host:
                    egress += stats.bytes
                if dst == host:
                    ingress += stats.bytes
        return egress, ingress

    def host_total(self, host: str) -> int:
        egress, ingress = self.host_bytes(host)
        return egress + ingress

    def kind_stats(self, kind: str) -> LinkStats:
        with self._lock:
            stats = self._by_kind.get(kind)
            return LinkStats(stats.frames, stats.bytes, stats.virtual_seconds) if stats else LinkStats()

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return self._total.bytes

    @property
    def total_frames(self) -> int:
        with self._lock:
            return self._total.frames

    @property
    def total_virtual_seconds(self) -> float:
        with self._lock:
            return self._total.virtual_seconds

    def snapshot(self) -> dict:
        """Internally consistent view taken under one lock acquisition.

        Unlike calling ``total_bytes`` and ``links()`` back to back (a
        recorder may land between the two), a snapshot's link sums always
        equal its totals — the property the concurrency tests pin down.
        """
        with self._lock:
            return {
                "total_bytes": self._total.bytes,
                "total_frames": self._total.frames,
                "total_virtual_seconds": self._total.virtual_seconds,
                "links": {
                    key: LinkStats(v.frames, v.bytes, v.virtual_seconds)
                    for key, v in self._links.items()
                },
                "by_kind": {
                    kind: LinkStats(v.frames, v.bytes, v.virtual_seconds)
                    for kind, v in self._by_kind.items()
                },
            }

    def links(self) -> dict[tuple[str, str], LinkStats]:
        with self._lock:
            return {
                key: LinkStats(v.frames, v.bytes, v.virtual_seconds)
                for key, v in self._links.items()
            }

    def reset(self) -> None:
        with self._lock:
            self._links.clear()
            self._by_kind.clear()
            self._total = LinkStats()
