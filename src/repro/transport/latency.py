"""Link latency / bandwidth models for the in-memory transport.

The model answers "how long does a frame of *n* bytes take from *src* to
*dst*" — propagation latency plus serialization delay at the link bandwidth.
Experiments sweep these parameters (E4's latency crossover); the transport
both *accounts* the delay (virtual seconds, via the traffic meter) and
optionally *sleeps* a scaled-down version so wall-clock benchmark timings
show the simulated shape.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

__all__ = [
    "LatencyModel",
    "ZeroLatency",
    "UniformLatency",
    "PerLinkLatency",
]


class LatencyModel(abc.ABC):
    """Computes one-way transfer delay in (virtual) seconds."""

    @abc.abstractmethod
    def delay(self, src: str, dst: str, nbytes: int) -> float:
        """Seconds for *nbytes* from *src* to *dst* (hosts, not URNs)."""

    def loopback_free(self) -> bool:
        """Whether src == dst transfers are free (default yes)."""
        return True


@dataclass(frozen=True)
class ZeroLatency(LatencyModel):
    """Instant network — functional tests."""

    def delay(self, src: str, dst: str, nbytes: int) -> float:
        return 0.0


@dataclass(frozen=True)
class UniformLatency(LatencyModel):
    """Same latency/bandwidth on every link.

    ``latency`` in seconds; ``bandwidth`` in bytes/second (0 = infinite).
    """

    latency: float = 0.0
    bandwidth: float = 0.0

    def delay(self, src: str, dst: str, nbytes: int) -> float:
        if src == dst:
            return 0.0
        transfer = (nbytes / self.bandwidth) if self.bandwidth > 0 else 0.0
        return self.latency + transfer


@dataclass
class PerLinkLatency(LatencyModel):
    """Per-link overrides over a default, keyed by (src, dst) host pairs.

    Link parameters are symmetric unless both directions are set explicitly.
    """

    default_latency: float = 0.0
    default_bandwidth: float = 0.0
    links: dict[tuple[str, str], tuple[float, float]] = field(default_factory=dict)

    def set_link(self, a: str, b: str, latency: float, bandwidth: float = 0.0, symmetric: bool = True) -> None:
        self.links[(a, b)] = (latency, bandwidth)
        if symmetric:
            self.links[(b, a)] = (latency, bandwidth)

    def delay(self, src: str, dst: str, nbytes: int) -> float:
        if src == dst:
            return 0.0
        latency, bandwidth = self.links.get((src, dst), (self.default_latency, self.default_bandwidth))
        transfer = (nbytes / bandwidth) if bandwidth > 0 else 0.0
        return latency + transfer
