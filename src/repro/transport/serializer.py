"""Naplet serialization (the Java-serialization analogue).

``NapletSerializer.dumps`` turns a naplet (or message body) into
transport-ready bytes; ``loads`` restores it on the destination.  Transient
fields are dropped by the objects' own ``__getstate__`` (the
``NapletContext`` refuses pickling outright, catching protocol bugs).

Code shipping integrates here: instances of *stamped* classes (bundled into
a :class:`~repro.codeshipping.codebase.CodeBase`) are reduced to
``(codebase, module, qualname, state)`` tuples.  In **lazy** mode (default,
the paper's model) only the tuple travels and the destination's
:class:`~repro.codeshipping.codebase.CodeCache` fetches code on a miss; in
**eager** mode the referenced module sources are attached to the envelope so
no fetch is ever needed — the E8 benchmark compares the two.

Two envelope versions exist (DESIGN.md §6.7):

- **v1** — one opaque pickle plus eager code bundles.  Always
  self-contained; produced by :meth:`NapletSerializer.dumps` and used for
  messages, freeze/thaw images, and peers that predate v2.
- **v2** — a *per-field* image of a tracked naplet: each ``__getstate__``
  entry pickled separately, content-hashed, and shipped either whole
  (``mode: full``) or as only the fields changed since a base image the
  destination acked (``mode: delta``).  Field bytes are wrapped in
  :class:`pickle.PickleBuffer` so protocol-5 transports move them as
  out-of-band frame segments without re-copying; eager code bundles are
  replaced by ``code_refs`` content hashes when the destination already
  holds the module.  Produced only by :meth:`dumps_with_cost`, the
  migration path.

The v2 machinery is conservative by construction: a field is re-used from
the cache (no re-pickle) only when it provably cannot have changed; a
delta is emitted only when the destination acked the exact base hash; and
every composed image is hash-verified on the receiving side.
"""

from __future__ import annotations

import io
import pickle
import time
from dataclasses import dataclass
from typing import Any, Iterable, Protocol

from repro.codeshipping.codebase import CodeBaseRegistry, CodeCache
from repro.codeshipping.shipping import (
    _reconstruct_shipped,
    resolver_installed,
    shipping_stamp_of,
)
from repro.core.errors import (
    DeltaBaseMissingError,
    SerializationError,
    ShippedCodeMissingError,
)
from repro.core.tracking import TrackedState, delta_fingerprint, is_delta_stable
from repro.transport.delta import (
    DeltaCache,
    FieldEntry,
    ImageRecord,
    content_hash,
    image_hash,
)

__all__ = ["NapletSerializer", "SerializeCost", "SerializerObserver"]

_V1 = 1
_V2 = 2


@dataclass(frozen=True)
class SerializeCost:
    """What one ``dumps`` cost: time and the byte split of the envelope.

    ``total_bytes`` is the full wire size including out-of-band buffers;
    ``payload_bytes`` the pickled object bytes actually shipped (for a
    delta, only the changed fields); ``code_bytes`` counts eager code
    bundles riding in the envelope (zero in lazy mode, where code travels
    on a later fetch instead).  ``delta``/``saved_bytes`` report the delta
    fast path: bytes of unchanged fields the destination's base cache made
    unnecessary to ship.
    """

    seconds: float
    total_bytes: int
    payload_bytes: int
    code_bytes: int
    delta: bool = False
    saved_bytes: int = 0


class SerializerObserver(Protocol):
    """Sink for per-call serialize/deserialize costs (the perf plane)."""

    def serialized(self, cost: SerializeCost) -> None: ...

    def deserialized(self, seconds: float, nbytes: int) -> None: ...


class _SelfReferential(Exception):
    """Internal: a field's object graph reaches back to the naplet itself."""


class _ShippingPickler(pickle.Pickler):
    """Pickler that reduces stamped instances by codebase reference.

    ``root`` guards per-field pickling: a field whose object graph reaches
    back to the naplet being decomposed would unpickle as a detached copy,
    so such naplets bail out of the v2 path entirely (v1 pickles the whole
    graph with one shared memo and keeps the cycle intact).
    """

    def __init__(self, file: io.BytesIO, protocol: int, root: Any = None) -> None:
        super().__init__(file, protocol)
        self.stamps_seen: set[tuple[str, str, str]] = set()
        self._root = root

    def reducer_override(self, obj: Any) -> Any:
        if self._root is not None and obj is self._root:
            raise _SelfReferential
        if isinstance(obj, type):
            return NotImplemented
        stamp = shipping_stamp_of(obj)
        if stamp is None:
            return NotImplemented
        self.stamps_seen.add(stamp)
        getstate = getattr(obj, "__getstate__", None)
        state = getstate() if callable(getstate) else dict(obj.__dict__)
        return (_reconstruct_shipped, stamp, state)


def _buf_bytes(buffers: Iterable[Any]) -> int:
    return sum(b.nbytes if isinstance(b, memoryview) else len(b) for b in buffers)


class NapletSerializer:
    """Envelope-based serializer with optional eager code bundling.

    With ``delta_shipping`` on (the default), migrating naplets go out as
    v2 per-field images and repeat hops toward a destination that acked a
    base hash ship deltas; off, every image is a v1 pickle and incoming v2
    envelopes are rejected — the "v1-only peer" posture the negotiation
    tests exercise.
    """

    def __init__(
        self,
        registry: CodeBaseRegistry | None = None,
        eager_code: bool = False,
        protocol: int = pickle.HIGHEST_PROTOCOL,
        observer: SerializerObserver | None = None,
        delta_shipping: bool = True,
        delta_cache_capacity: int = 64,
    ) -> None:
        if eager_code and registry is None:
            raise SerializationError("eager code shipping needs a codebase registry")
        self._registry = registry
        self._eager = eager_code
        self._protocol = protocol
        self._observer = observer
        self._delta = delta_shipping
        self._delta_cache = DeltaCache(delta_cache_capacity)

    @property
    def eager_code(self) -> bool:
        return self._eager

    @property
    def delta_shipping(self) -> bool:
        return self._delta

    @property
    def delta_cache(self) -> DeltaCache:
        """Per-naplet base-image cache (sender and receiver roles share it)."""
        return self._delta_cache

    # -- encode --------------------------------------------------------------- #

    def dumps(self, obj: Any) -> bytes:
        """Serialize *obj* into a self-contained v1 envelope.

        Always v1 and always in-band: the result round-trips through any
        reader and any storage (freeze/thaw images, message bodies) with
        no delta cache or buffer plumbing involved.
        """
        data, cost = self._encode_v1(obj)
        if self._observer is not None:
            self._observer.serialized(cost)
        return data

    def dumps_with_cost(
        self,
        obj: Any,
        *,
        base_hint: str | None = None,
        known_code: set[str] | None = None,
        force_v1: bool = False,
    ) -> tuple[bytes, list[Any], SerializeCost]:
        """Serialize *obj* for migration: ``(data, buffers, cost)``.

        ``buffers`` are protocol-5 out-of-band segments (memoryviews over
        the field pickles) a capable transport ships without re-copying;
        pass them back to :meth:`loads` unchanged.  ``base_hint`` is the
        image hash the destination acked holding for this naplet — when it
        matches the sender's cache, only changed fields ship (``mode:
        delta``).  ``known_code`` holds content hashes of modules the
        destination's code cache was seen holding; matching eager bundles
        are replaced by hash references.  ``force_v1`` drops to the legacy
        envelope for peers that rejected v2.
        """
        nid = self._trackable_id(obj) if self._delta and not force_v1 else None
        if nid is not None:
            state = obj.__getstate__()
            if isinstance(state, dict):
                encoded = self._encode_v2(obj, nid, state, base_hint, known_code)
                if encoded is not None:
                    data, buffers, cost = encoded
                    if self._observer is not None:
                        self._observer.serialized(cost)
                    return data, buffers, cost
        data, cost = self._encode_v1(obj)
        if self._observer is not None:
            self._observer.serialized(cost)
        return data, [], cost

    @staticmethod
    def _trackable_id(obj: Any) -> str | None:
        """The naplet-id cache key, or None when *obj* can't travel as v2."""
        if not isinstance(obj, TrackedState):
            return None
        if not getattr(obj, "has_id", False):
            return None
        return str(obj.naplet_id)

    def _encode_v1(self, obj: Any) -> tuple[bytes, SerializeCost]:
        started = time.perf_counter()
        buffer = io.BytesIO()
        pickler = _ShippingPickler(buffer, self._protocol)
        try:
            pickler.dump(obj)
        except (TypeError, AttributeError, pickle.PicklingError) as exc:
            raise SerializationError(f"cannot serialize {type(obj).__name__}: {exc}") from exc
        bundles: dict[tuple[str, str], str] = {}
        if self._eager and pickler.stamps_seen:
            assert self._registry is not None
            for codebase_name, module_key, _qualname in pickler.stamps_seen:
                codebase = self._registry.get(codebase_name)
                bundles[(codebase_name, module_key)] = codebase.source_of(module_key)
        envelope = {
            "v": _V1,
            "payload": buffer.getvalue(),
            "bundles": bundles,
        }
        data = pickle.dumps(envelope, self._protocol)
        cost = SerializeCost(
            seconds=time.perf_counter() - started,
            total_bytes=len(data),
            payload_bytes=len(envelope["payload"]),
            code_bytes=sum(len(source.encode("utf-8")) for source in bundles.values()),
        )
        return data, cost

    def _pickle_field(self, root: Any, name: str, value: Any) -> tuple[bytes, frozenset]:
        buffer = io.BytesIO()
        pickler = _ShippingPickler(buffer, self._protocol, root=root)
        try:
            pickler.dump(value)
        except _SelfReferential:
            raise
        except (TypeError, AttributeError, pickle.PicklingError) as exc:
            raise SerializationError(
                f"cannot serialize field {name!r} of {type(root).__name__}: {exc}"
            ) from exc
        return buffer.getvalue(), frozenset(pickler.stamps_seen)

    def _encode_v2(
        self,
        obj: Any,
        nid: str,
        state: dict[str, Any],
        base_hint: str | None,
        known_code: set[str] | None,
    ) -> tuple[bytes, list[Any], SerializeCost] | None:
        started = time.perf_counter()
        dirty = obj.dirty_fields()
        prev = self._delta_cache.get(nid)
        new_fields: dict[str, FieldEntry] = {}
        try:
            for name, value in state.items():
                entry = prev.fields.get(name) if prev is not None else None
                if (
                    entry is not None
                    and name not in dirty
                    and entry.value is value
                    and (
                        is_delta_stable(value)
                        or (
                            entry.fingerprint is not None
                            and entry.fingerprint == delta_fingerprint(value)
                        )
                    )
                ):
                    # Provably unchanged: reuse bytes and hash, skip the pickle.
                    new_fields[name] = entry
                    continue
                data, stamps = self._pickle_field(obj, name, value)
                digest = content_hash(data)
                if entry is not None and entry.hash == digest:
                    # Re-pickled to the same content (e.g. rebound to an
                    # equal value): keep the old bytes object, refresh the
                    # identity and fingerprint for the next hop's skip.
                    data = entry.data
                new_fields[name] = FieldEntry(
                    data=data,
                    hash=digest,
                    value=value,
                    fingerprint=delta_fingerprint(value),
                    stamps=stamps,
                )
        except _SelfReferential:
            return None  # field graph reaches the naplet itself: v1 keeps the cycle
        img_hash = image_hash({n: e.hash for n, e in new_fields.items()})
        prev_hashes = prev.field_hashes() if prev is not None else {}
        delta_mode = (
            base_hint is not None and prev is not None and prev.hash == base_hint
        )
        if delta_mode:
            shipped = {
                n: e for n, e in new_fields.items() if prev_hashes.get(n) != e.hash
            }
            removed = [n for n in prev_hashes if n not in new_fields]
        else:
            shipped = new_fields
            removed = []

        stamp = shipping_stamp_of(obj)
        if stamp is not None:
            cls_ref: tuple[str, Any] = ("stamp", stamp)
        else:
            try:
                cls_ref = ("pickle", pickle.dumps(type(obj), self._protocol))
            except Exception as exc:
                raise SerializationError(
                    f"cannot serialize {type(obj).__name__}: {exc}"
                ) from exc

        stamps: set[tuple[str, str, str]] = set() if stamp is None else {stamp}
        for entry in shipped.values():
            stamps.update(entry.stamps)
        bundles: dict[tuple[str, str], str] = {}
        code_refs: dict[tuple[str, str], str] = {}
        if self._eager and stamps:
            assert self._registry is not None
            for codebase_name, module_key, _qualname in stamps:
                key = (codebase_name, module_key)
                if key in bundles or key in code_refs:
                    continue
                codebase = self._registry.get(codebase_name)
                module_hash = codebase.hash_of(module_key)
                if known_code and module_hash in known_code:
                    code_refs[key] = module_hash
                else:
                    bundles[key] = codebase.source_of(module_key)

        envelope: dict[str, Any] = {
            "v": _V2,
            "mode": "delta" if delta_mode else "full",
            "nid": nid,
            "cls": cls_ref,
            "hash": img_hash,
            "fields": {n: self._wrap(e.data) for n, e in shipped.items()},
            "bundles": bundles,
            "code_refs": code_refs,
        }
        if delta_mode:
            envelope["base"] = base_hint
            envelope["removed"] = removed
        data, buffers = self._pack(envelope)
        payload_bytes = sum(len(e.data) for e in shipped.values())
        image_bytes = sum(len(e.data) for e in new_fields.values())
        cost = SerializeCost(
            seconds=time.perf_counter() - started,
            total_bytes=len(data) + _buf_bytes(buffers),
            payload_bytes=payload_bytes,
            code_bytes=sum(len(s.encode("utf-8")) for s in bundles.values()),
            delta=delta_mode,
            saved_bytes=image_bytes - payload_bytes if delta_mode else 0,
        )
        self._delta_cache.put(
            nid, ImageRecord(hash=img_hash, cls_ref=cls_ref, fields=new_fields)
        )
        obj.clear_dirty()
        return data, buffers, cost

    def _wrap(self, data: bytes) -> Any:
        """Field bytes as they sit in the envelope: protocol-5 readers get
        a :class:`pickle.PickleBuffer`, so packing with a buffer callback
        moves them out-of-band with zero copies (and in-band otherwise)."""
        if self._protocol >= 5:
            return pickle.PickleBuffer(data)
        return data

    def _pack(self, envelope: dict[str, Any]) -> tuple[bytes, list[Any]]:
        if self._protocol >= 5:
            raw: list[pickle.PickleBuffer] = []
            data = pickle.dumps(envelope, self._protocol, buffer_callback=raw.append)
            return data, [pb.raw() for pb in raw]
        return pickle.dumps(envelope, self._protocol), []

    # -- decode --------------------------------------------------------------- #

    def loads(
        self, data: bytes, cache: CodeCache | None = None, *, buffers: Any = None
    ) -> Any:
        """Deserialize an envelope; *cache* resolves shipped classes.

        ``buffers`` are the out-of-band segments that travelled beside the
        envelope (``Frame.buffers``); v1 envelopes and in-band v2
        envelopes need none.
        """
        return self.loads_with_info(data, cache, buffers=buffers)[0]

    def loads_with_info(
        self, data: bytes, cache: CodeCache | None = None, *, buffers: Any = None
    ) -> tuple[Any, dict[str, Any]]:
        """Like :meth:`loads`, also reporting ``{v, mode, nid, hash}``.

        The navigator's landing handler uses the info to ack the base hash
        it now caches, closing the delta negotiation loop.
        """
        started = time.perf_counter()
        result, info = self._loads(data, cache, buffers)
        if self._observer is not None:
            nbytes = len(data) + _buf_bytes(buffers or ())
            self._observer.deserialized(time.perf_counter() - started, nbytes)
        return result, info

    def _loads(
        self, data: bytes, cache: CodeCache | None, buffers: Any
    ) -> tuple[Any, dict[str, Any]]:
        try:
            envelope = pickle.loads(data, buffers=buffers)
        except Exception as exc:
            raise SerializationError(f"corrupt envelope: {exc}") from exc
        if not isinstance(envelope, dict):
            raise SerializationError("unrecognised envelope format")
        version = envelope.get("v")
        if version == _V1:
            obj = self._loads_v1(envelope, cache)
            return obj, {"v": _V1, "mode": "full", "nid": None, "hash": None}
        if version == _V2:
            if not self._delta:
                raise SerializationError(
                    "v2 (delta-shipping) envelope, but this reader only "
                    "accepts v1 — the sender must fall back to a full v1 image"
                )
            return self._loads_v2(envelope, cache)
        raise SerializationError("unrecognised envelope format")

    def _install_bundles(
        self, envelope: dict[str, Any], cache: CodeCache | None
    ) -> None:
        bundles: dict[tuple[str, str], str] = envelope.get("bundles") or {}
        if bundles:
            if cache is None:
                raise SerializationError(
                    "envelope carries code bundles but no code cache was provided"
                )
            for (codebase_name, module_key), source in bundles.items():
                cache.install_source(codebase_name, module_key, source)

    def _loads_v1(self, envelope: dict[str, Any], cache: CodeCache | None) -> Any:
        self._install_bundles(envelope, cache)
        payload: bytes = envelope["payload"]
        try:
            if cache is not None:
                with resolver_installed(cache):
                    return pickle.loads(payload)
            return pickle.loads(payload)
        except SerializationError:
            raise
        except Exception as exc:
            raise SerializationError(f"cannot deserialize payload: {exc}") from exc

    def _loads_v2(
        self, envelope: dict[str, Any], cache: CodeCache | None
    ) -> tuple[Any, dict[str, Any]]:
        mode = envelope.get("mode")
        nid = envelope.get("nid")
        img_hash = envelope.get("hash")
        shipped = envelope.get("fields")
        cls_ref = envelope.get("cls")
        if (
            mode not in ("full", "delta")
            or not isinstance(nid, str)
            or not isinstance(img_hash, str)
            or not isinstance(shipped, dict)
            or not isinstance(cls_ref, tuple)
        ):
            raise SerializationError("malformed v2 envelope")
        self._install_bundles(envelope, cache)
        for (codebase_name, module_key), module_hash in (
            envelope.get("code_refs") or {}
        ).items():
            if cache is None or not cache.holds(codebase_name, module_key, module_hash):
                raise ShippedCodeMissingError(
                    f"envelope references module {module_key!r} of codebase "
                    f"{codebase_name!r} by hash {module_hash[:12]}, which this "
                    "server does not hold — sender must re-ship the bundle"
                )

        # Compose the per-field byte image: delta patches onto the base.
        field_bytes: dict[str, Any] = {}
        field_hashes: dict[str, str] = {}
        if mode == "delta":
            base_hash = envelope.get("base")
            base = (
                self._delta_cache.get(nid, base_hash)
                if isinstance(base_hash, str)
                else None
            )
            if base is None:
                raise DeltaBaseMissingError(
                    f"delta for naplet {nid} needs base image "
                    f"{str(base_hash)[:12]} which is not cached here — "
                    "sender must re-ship the full image"
                )
            removed = set(envelope.get("removed") or ())
            for name, entry in base.fields.items():
                if name in removed:
                    continue
                field_bytes[name] = entry.data
                field_hashes[name] = entry.hash
        for name, blob in shipped.items():
            field_bytes[name] = blob
            field_hashes[name] = content_hash(blob)
        if image_hash(field_hashes) != img_hash:
            raise SerializationError(
                f"composed image for naplet {nid} does not match the "
                "announced content hash (base drift or corrupt delta)"
            )

        kind, ref = cls_ref
        if kind == "stamp":
            if cache is None:
                raise SerializationError(
                    "v2 envelope ships a stamped class but no code cache was provided"
                )
            cls = cache.resolve(*ref)
        elif kind == "pickle":
            try:
                cls = pickle.loads(ref)
            except Exception as exc:
                raise SerializationError(f"cannot resolve naplet class: {exc}") from exc
        else:
            raise SerializationError(f"unknown class reference kind {kind!r}")

        state: dict[str, Any] = {}
        new_fields: dict[str, FieldEntry] = {}

        def _unpickle_all() -> None:
            for name, blob in field_bytes.items():
                try:
                    value = pickle.loads(blob)
                except SerializationError:
                    raise
                except Exception as exc:
                    raise SerializationError(
                        f"cannot deserialize field {name!r}: {exc}"
                    ) from exc
                state[name] = value
                new_fields[name] = FieldEntry(
                    data=blob if isinstance(blob, bytes) else bytes(blob),
                    hash=field_hashes[name],
                    value=value,
                    fingerprint=delta_fingerprint(value),
                )

        if cache is not None:
            with resolver_installed(cache):
                _unpickle_all()
        else:
            _unpickle_all()

        obj = cls.__new__(cls)
        setstate = getattr(obj, "__setstate__", None)
        if callable(setstate):
            setstate(state)
        else:
            obj.__dict__.update(state)
        # Seed the base cache with the composed image: the field values in
        # the entries ARE the objects now installed on the naplet, so a
        # return hop from this server gets the identity-based pickle skip.
        self._delta_cache.put(
            nid, ImageRecord(hash=img_hash, cls_ref=cls_ref, fields=new_fields)
        )
        return obj, {"v": _V2, "mode": mode, "nid": nid, "hash": img_hash}

    # -- sizing ----------------------------------------------------------------- #

    def payload_size(self, obj: Any) -> int:
        """On-wire size of *obj* under this serializer's settings.

        A pure probe: bypasses the perf observer (a sizing call is not a
        hop — see the telemetry-pollution regression test) and never
        touches the delta caches, so probing a naplet mid-flight cannot
        perturb the delta negotiation.
        """
        return len(self._encode_v1(obj)[0])
