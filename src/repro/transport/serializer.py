"""Naplet serialization (the Java-serialization analogue).

``NapletSerializer.dumps`` turns a naplet (or message body) into
transport-ready bytes; ``loads`` restores it on the destination.  Transient
fields are dropped by the objects' own ``__getstate__`` (the
``NapletContext`` refuses pickling outright, catching protocol bugs).

Code shipping integrates here: instances of *stamped* classes (bundled into
a :class:`~repro.codeshipping.codebase.CodeBase`) are reduced to
``(codebase, module, qualname, state)`` tuples.  In **lazy** mode (default,
the paper's model) only the tuple travels and the destination's
:class:`~repro.codeshipping.codebase.CodeCache` fetches code on a miss; in
**eager** mode the referenced module sources are attached to the envelope so
no fetch is ever needed — the E8 benchmark compares the two.
"""

from __future__ import annotations

import io
import pickle
import time
from dataclasses import dataclass
from typing import Any, Protocol

from repro.codeshipping.codebase import CodeBaseRegistry, CodeCache
from repro.codeshipping.shipping import (
    _reconstruct_shipped,
    resolver_installed,
    shipping_stamp_of,
)
from repro.core.errors import SerializationError

__all__ = ["NapletSerializer", "SerializeCost", "SerializerObserver"]

_ENVELOPE_VERSION = 1


@dataclass(frozen=True)
class SerializeCost:
    """What one ``dumps`` cost: time and the byte split of the envelope.

    ``code_bytes`` counts eager code bundles riding in the envelope (zero
    in lazy mode, where code travels on a later fetch instead).
    """

    seconds: float
    total_bytes: int
    payload_bytes: int
    code_bytes: int


class SerializerObserver(Protocol):
    """Sink for per-call serialize/deserialize costs (the perf plane)."""

    def serialized(self, cost: SerializeCost) -> None: ...

    def deserialized(self, seconds: float, nbytes: int) -> None: ...


class _ShippingPickler(pickle.Pickler):
    """Pickler that reduces stamped instances by codebase reference."""

    def __init__(self, file: io.BytesIO, protocol: int) -> None:
        super().__init__(file, protocol)
        self.stamps_seen: set[tuple[str, str, str]] = set()

    def reducer_override(self, obj: Any) -> Any:
        if isinstance(obj, type):
            return NotImplemented
        stamp = shipping_stamp_of(obj)
        if stamp is None:
            return NotImplemented
        self.stamps_seen.add(stamp)
        getstate = getattr(obj, "__getstate__", None)
        state = getstate() if callable(getstate) else dict(obj.__dict__)
        return (_reconstruct_shipped, stamp, state)


class NapletSerializer:
    """Envelope-based serializer with optional eager code bundling."""

    def __init__(
        self,
        registry: CodeBaseRegistry | None = None,
        eager_code: bool = False,
        protocol: int = pickle.HIGHEST_PROTOCOL,
        observer: SerializerObserver | None = None,
    ) -> None:
        if eager_code and registry is None:
            raise SerializationError("eager code shipping needs a codebase registry")
        self._registry = registry
        self._eager = eager_code
        self._protocol = protocol
        self._observer = observer

    @property
    def eager_code(self) -> bool:
        return self._eager

    # -- encode --------------------------------------------------------------- #

    def dumps(self, obj: Any) -> bytes:
        """Serialize *obj* into an envelope ready for a frame payload."""
        return self.dumps_with_cost(obj)[0]

    def dumps_with_cost(self, obj: Any) -> tuple[bytes, SerializeCost]:
        """Serialize *obj* and report what the call cost.

        The :class:`SerializeCost` carries elapsed seconds and the
        payload/code byte decomposition of the envelope — the navigator
        attributes these to the hop (DESIGN.md §6.6).
        """
        started = time.perf_counter()
        buffer = io.BytesIO()
        pickler = _ShippingPickler(buffer, self._protocol)
        try:
            pickler.dump(obj)
        except (TypeError, AttributeError, pickle.PicklingError) as exc:
            raise SerializationError(f"cannot serialize {type(obj).__name__}: {exc}") from exc
        bundles: dict[tuple[str, str], str] = {}
        if self._eager and pickler.stamps_seen:
            assert self._registry is not None
            for codebase_name, module_key, _qualname in pickler.stamps_seen:
                codebase = self._registry.get(codebase_name)
                bundles[(codebase_name, module_key)] = codebase.source_of(module_key)
        envelope = {
            "v": _ENVELOPE_VERSION,
            "payload": buffer.getvalue(),
            "bundles": bundles,
        }
        data = pickle.dumps(envelope, self._protocol)
        cost = SerializeCost(
            seconds=time.perf_counter() - started,
            total_bytes=len(data),
            payload_bytes=len(envelope["payload"]),
            code_bytes=sum(len(source.encode("utf-8")) for source in bundles.values()),
        )
        if self._observer is not None:
            self._observer.serialized(cost)
        return data, cost

    # -- decode --------------------------------------------------------------- #

    def loads(self, data: bytes, cache: CodeCache | None = None) -> Any:
        """Deserialize an envelope; *cache* resolves shipped classes."""
        started = time.perf_counter()
        result = self._loads(data, cache)
        if self._observer is not None:
            self._observer.deserialized(time.perf_counter() - started, len(data))
        return result

    def _loads(self, data: bytes, cache: CodeCache | None) -> Any:
        try:
            envelope = pickle.loads(data)
        except Exception as exc:
            raise SerializationError(f"corrupt envelope: {exc}") from exc
        if not isinstance(envelope, dict) or envelope.get("v") != _ENVELOPE_VERSION:
            raise SerializationError("unrecognised envelope format")
        bundles: dict[tuple[str, str], str] = envelope["bundles"]
        if bundles:
            if cache is None:
                raise SerializationError(
                    "envelope carries code bundles but no code cache was provided"
                )
            for (codebase_name, module_key), source in bundles.items():
                cache.install_source(codebase_name, module_key, source)
        payload: bytes = envelope["payload"]
        try:
            if cache is not None:
                with resolver_installed(cache):
                    return pickle.loads(payload)
            return pickle.loads(payload)
        except SerializationError:
            raise
        except Exception as exc:
            raise SerializationError(f"cannot deserialize payload: {exc}") from exc

    # -- sizing ----------------------------------------------------------------- #

    def payload_size(self, obj: Any) -> int:
        """On-wire size of *obj* under this serializer's settings."""
        return len(self.dumps(obj))
