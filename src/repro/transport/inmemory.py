"""In-memory transport: the workhorse substrate for experiments.

Frames are delivered by direct handler invocation on the sending thread —
the synchronous-call analogue of a blocking network send.  Before delivery
the latency model's delay is accounted on the :class:`SimClock` and the
frame is metered on the :class:`TrafficMeter`.  Fault injection supports
dropped links (one-way failures) and host partitions, exercising the
paper's "intermittent or unreliable Internet connections" motivation.

Handlers therefore run on foreign threads: server components keep their
handler work short (enqueue long work to their own executors) and
thread-safe.
"""

from __future__ import annotations

import itertools
import threading

from repro.core.errors import NapletCommunicationError
from repro.transport.clock import SimClock
from repro.transport.traffic import TrafficMeter
from repro.transport.base import Frame, Transport, host_of
from repro.transport.latency import LatencyModel, ZeroLatency

__all__ = ["InMemoryTransport"]


class InMemoryTransport(Transport):
    """Synchronous in-process frame router with metering and fault injection."""

    def __init__(
        self,
        latency: LatencyModel | None = None,
        clock: SimClock | None = None,
        meter: TrafficMeter | None = None,
    ) -> None:
        super().__init__()
        self.latency = latency or ZeroLatency()
        self.clock = clock or SimClock()
        self.meter = meter or TrafficMeter()
        self._down_links: set[tuple[str, str]] = set()
        self._down_hosts: set[str] = set()
        self._fault_lock = threading.Lock()
        # Pool-aware semantics: the first frame over a (src, dst) link is a
        # logical connection open; every later frame is a reuse.  This gives
        # benchmarks one accounting surface across both transports.
        self._links_opened: set[tuple[str, str]] = set()
        self._links_lock = threading.Lock()
        self._correlation_ids = itertools.count(1)

    # -- fault injection ---------------------------------------------------- #

    def fail_link(self, src_host: str, dst_host: str, symmetric: bool = True) -> None:
        """Make frames from *src_host* to *dst_host* fail."""
        with self._fault_lock:
            self._down_links.add((src_host, dst_host))
            if symmetric:
                self._down_links.add((dst_host, src_host))

    def heal_link(self, src_host: str, dst_host: str, symmetric: bool = True) -> None:
        with self._fault_lock:
            self._down_links.discard((src_host, dst_host))
            if symmetric:
                self._down_links.discard((dst_host, src_host))

    def partition_host(self, host: str) -> None:
        """Isolate *host* from everyone."""
        with self._fault_lock:
            self._down_hosts.add(host)

    def heal_host(self, host: str) -> None:
        with self._fault_lock:
            self._down_hosts.discard(host)

    def _check_reachable(self, src: str, dst: str) -> None:
        with self._fault_lock:
            if src in self._down_hosts or dst in self._down_hosts:
                raise NapletCommunicationError(f"host partitioned: {src} -> {dst}")
            if (src, dst) in self._down_links:
                raise NapletCommunicationError(f"link down: {src} -> {dst}")

    # -- open links --------------------------------------------------------- #

    def live_peers(self, source_urn: str) -> list[str]:
        """Registered peers whose directed link from *source_urn* is open.

        Mirrors the pool-accounting semantics below: the first frame over
        a ``(src, dst)`` link is the logical dial, so a heartbeat toward a
        listed peer is always accounted as a reuse, never an open.
        Partitions do not unlist a peer — the send fails instead, which is
        the signal the observatory counts.
        """
        src = host_of(source_urn)
        with self._links_lock:
            links = set(self._links_opened)
        return [
            urn
            for urn in self.endpoints()
            if host_of(urn) != src and (src, host_of(urn)) in links
        ]

    # -- delivery ----------------------------------------------------------- #

    def _deliver(self, frame: Frame) -> bytes | None:
        src, dst = host_of(frame.source), host_of(frame.dest)
        self._check_reachable(src, dst)
        handler = self._handler_for(frame.dest)
        if frame.correlation_id is None:
            frame.correlation_id = next(self._correlation_ids)
        link = (src, dst)
        with self._links_lock:
            if link in self._links_opened:
                self._note_connection_reused(frame.dest)
            else:
                self._links_opened.add(link)
                self._note_connection_opened(frame.dest)
        delay = self.latency.delay(src, dst, frame.size)
        self.meter.record(src, dst, frame.kind, frame.size, delay)
        self._account_sent(src, frame.size)
        self._account_received(dst, frame.size)
        self.clock.advance(delay)
        self._observe_wire(frame, delay)
        return handler(frame)

    def send(self, frame: Frame) -> None:
        self._deliver(frame)

    def request(self, frame: Frame, timeout: float | None = None) -> bytes:
        reply = self._deliver(frame)
        if reply is None:
            raise NapletCommunicationError(
                f"no reply from {frame.dest} for {frame.kind} frame"
            )
        # The reply travels back over the same link: meter and account it.
        src, dst = host_of(frame.source), host_of(frame.dest)
        delay = self.latency.delay(dst, src, len(reply))
        self.meter.record(dst, src, frame.kind + "-reply", len(reply), delay)
        self._account_sent(dst, len(reply))
        self._account_received(src, len(reply))
        self.clock.advance(delay)
        return reply
