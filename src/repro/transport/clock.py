"""Simulation clock.

The reproduction runs real threads, so it cannot do classical discrete-event
time warping; instead the :class:`SimClock` *accounts* virtual network
delays (reported by the latency model) and optionally *sleeps* a scaled
fraction of them so that wall-clock measurements — what pytest-benchmark
sees — exhibit the simulated shape.  ``scale=0`` makes experiments free of
sleeping (pure byte/delay accounting); ``scale=0.01`` turns a simulated
100 ms link into a real 1 ms pause.
"""

from __future__ import annotations

import threading
import time

__all__ = ["SimClock"]


class SimClock:
    """Accumulates virtual seconds; optionally sleeps scaled real time."""

    def __init__(self, scale: float = 0.0) -> None:
        if scale < 0:
            raise ValueError("scale must be >= 0")
        self._scale = scale
        self._virtual = 0.0
        self._lock = threading.Lock()

    @property
    def scale(self) -> float:
        return self._scale

    @property
    def virtual_time(self) -> float:
        """Total virtual seconds accounted so far (across all flows)."""
        with self._lock:
            return self._virtual

    def advance(self, seconds: float) -> None:
        """Account *seconds* of virtual delay; sleep ``seconds*scale`` real."""
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        with self._lock:
            self._virtual += seconds
        if self._scale > 0 and seconds > 0:
            time.sleep(seconds * self._scale)

    def reset(self) -> None:
        with self._lock:
            self._virtual = 0.0
