"""Pooled, multiplexed client connections for the TCP transport.

The connection-per-frame wire layer pays a dial (SYN/ACK + thread spawn)
for every hop, message, and directory report — the dominant agent-transfer
cost identified by the lightweight-MA literature.  This module keeps one
keepalive socket per destination URN and multiplexes many concurrent
request/reply exchanges over it:

- every wire message is a length-prefixed pickle.  Requests travel as
  ``("req", correlation_id, frame, expects_reply)``; replies come back as
  ``("rep", correlation_id, payload)`` or ``("err", correlation_id, text)``
  when the remote handler raised;
- a frame carrying out-of-band buffers (pickle protocol 5, DESIGN.md §6.7)
  travels as ``("reqb", correlation_id, frame_sans_buffers, expects_reply,
  sizes)`` followed by one raw segment per buffer, written straight from
  the buffer memory with no intermediate concatenation; the server reads
  the announced sizes back into fresh memoryviews;
- a :class:`PooledConnection` owns the socket: senders serialize on a write
  lock, a single reader thread demultiplexes replies to per-request waiters
  by correlation id, so N threads can have N requests in flight at once;
- the :class:`ConnectionPool` keeps at most one live connection per
  destination, transparently redials when a kept-alive peer went away, and
  counts opens/reuses for the transport's telemetry.

Retry semantics: a request that dies on a *reused* connection (stale
keepalive — the peer restarted or idled us out) is retried once on a fresh
connection.  A failure on a freshly dialed connection, a timeout, or a
remote handler error is never retried.
"""

from __future__ import annotations

import itertools
import pickle
import socket
import threading
from dataclasses import replace
from typing import Callable

from repro.core.errors import NapletCommunicationError
from repro.transport.base import Frame

__all__ = ["ConnectionPool", "PooledConnection", "ConnectionClosedError"]

_LEN_SIZE = 4
MAX_FRAME = 64 * 1024 * 1024

REQ = "req"
REQB = "reqb"  # request with out-of-band buffer segments
REP = "rep"
ERR = "err"


class ConnectionClosedError(NapletCommunicationError):
    """The pooled connection died before (or while) a reply arrived."""


def send_blob(sock: socket.socket, blob: bytes) -> None:
    if len(blob) > MAX_FRAME:
        raise NapletCommunicationError(f"frame too large: {len(blob)} bytes")
    sock.sendall(len(blob).to_bytes(_LEN_SIZE, "big") + blob)


def _recv_exact(sock: socket.socket, count: int, allow_eof: bool = False) -> bytes | None:
    chunks: list[bytes] = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            if allow_eof and remaining == count:
                return None  # clean close at a message boundary
            raise NapletCommunicationError("peer closed the connection mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_blob(sock: socket.socket, allow_eof: bool = False) -> bytes | None:
    prefix = _recv_exact(sock, _LEN_SIZE, allow_eof=allow_eof)
    if prefix is None:
        return None
    length = int.from_bytes(prefix, "big")
    if length > MAX_FRAME:
        raise NapletCommunicationError(f"frame too large: {length} bytes")
    return _recv_exact(sock, length)


def send_blob_segments(
    sock: socket.socket, blob: bytes, segments: tuple
) -> int:
    """Write ``blob`` (length-prefixed) then each raw segment, in order.

    The segments go to the socket straight from their backing memory —
    memoryviews from ``PickleBuffer.raw()`` are never concatenated into a
    userspace copy.  Returns the total bytes written past the prefix.
    """
    if len(blob) > MAX_FRAME:
        raise NapletCommunicationError(f"frame too large: {len(blob)} bytes")
    total = len(blob)
    sock.sendall(len(blob).to_bytes(_LEN_SIZE, "big") + blob)
    for segment in segments:
        nbytes = segment.nbytes if isinstance(segment, memoryview) else len(segment)
        if nbytes > MAX_FRAME:
            raise NapletCommunicationError(f"frame segment too large: {nbytes} bytes")
        sock.sendall(segment)
        total += nbytes
    return total


def recv_segments(sock: socket.socket, sizes: list[int]) -> tuple:
    """Read the announced out-of-band segments into fresh memoryviews."""
    segments = []
    for size in sizes:
        if size > MAX_FRAME:
            raise NapletCommunicationError(f"frame segment too large: {size} bytes")
        segments.append(memoryview(_recv_exact(sock, size)))
    return tuple(segments)


class _Waiter:
    """Parking spot for one in-flight request's reply."""

    __slots__ = ("event", "payload", "error", "nbytes")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.payload: bytes | None = None
        self.error: str | None = None
        self.nbytes = 0  # wire size of the reply blob (byte accounting)


class PooledConnection:
    """One keepalive socket to a destination, shared by many requests."""

    def __init__(self, sock: socket.socket, dest: str) -> None:
        # The dialer's connect timeout must not linger on the keepalive
        # socket: an idle reader would otherwise die of socket.timeout.
        sock.settimeout(None)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        self.sock = sock
        self.dest = dest
        self._send_lock = threading.Lock()
        self._pending: dict[int, _Waiter] = {}
        self._pending_lock = threading.Lock()
        self._ids = itertools.count(1)
        self._dead = threading.Event()
        self._reader = threading.Thread(
            target=self._read_loop, name=f"tcp-pool-reader-{dest}", daemon=True
        )
        self._reader.start()

    @property
    def alive(self) -> bool:
        return not self._dead.is_set()

    # -- reader: demultiplex replies by correlation id --------------------- #

    def _read_loop(self) -> None:
        try:
            while True:
                blob = recv_blob(self.sock, allow_eof=True)
                if blob is None:
                    break
                tag, cid, body = pickle.loads(blob)
                with self._pending_lock:
                    waiter = self._pending.pop(cid, None)
                if waiter is None:
                    continue  # request timed out and gave up; drop the reply
                waiter.nbytes = len(blob)
                if tag == ERR:
                    waiter.error = body
                else:
                    waiter.payload = body
                waiter.event.set()
        except Exception:
            pass  # any wire failure kills the connection below
        finally:
            self.close()

    # -- wire operations ---------------------------------------------------- #

    def _write_request(self, frame: Frame, expects_reply: bool, cid: int) -> int:
        """Serialize and write one request; returns its wire size in bytes.

        Frames with out-of-band buffers use the segmented ``REQB`` layout:
        only the buffer-less frame core is pickled, the buffers follow as
        raw segments written from their own memory (zero-copy).
        """
        frame.correlation_id = cid
        if frame.buffers:
            sizes = [
                b.nbytes if isinstance(b, memoryview) else len(b)
                for b in frame.buffers
            ]
            core = replace(frame, buffers=())
            blob = pickle.dumps((REQB, cid, core, expects_reply, sizes))
            with self._send_lock:
                return send_blob_segments(self.sock, blob, frame.buffers)
        blob = pickle.dumps((REQ, cid, frame, expects_reply))
        with self._send_lock:
            send_blob(self.sock, blob)
        return len(blob)

    def _post(self, frame: Frame, expects_reply: bool) -> int:
        cid = next(self._ids)
        try:
            return self._write_request(frame, expects_reply, cid)
        except OSError as exc:
            self.close()
            raise ConnectionClosedError(
                f"pooled connection to {self.dest} died: {exc}"
            ) from exc

    def send(self, frame: Frame) -> int:
        """Fire-and-forget delivery; returns the wire bytes written."""
        if not self.alive:
            raise ConnectionClosedError(f"pooled connection to {self.dest} is closed")
        return self._post(frame, expects_reply=False)

    def request(self, frame: Frame, timeout: float | None = None) -> bytes:
        """Send *frame* and block until its correlated reply arrives."""
        return self.request_with_cost(frame, timeout)[0]

    def request_with_cost(
        self, frame: Frame, timeout: float | None = None
    ) -> tuple[bytes, int, int]:
        """Like :meth:`request`, also reporting (sent, received) wire bytes."""
        if not self.alive:
            raise ConnectionClosedError(f"pooled connection to {self.dest} is closed")
        waiter = _Waiter()
        cid = next(self._ids)
        with self._pending_lock:
            self._pending[cid] = waiter
        try:
            sent = self._write_request(frame, True, cid)
        except OSError as exc:
            with self._pending_lock:
                self._pending.pop(cid, None)
            self.close()
            raise ConnectionClosedError(
                f"pooled connection to {self.dest} died: {exc}"
            ) from exc
        if not waiter.event.wait(timeout):
            with self._pending_lock:
                self._pending.pop(cid, None)
            raise NapletCommunicationError(f"request to {frame.dest} timed out")
        if waiter.error is not None:
            if waiter.error == "connection closed":
                raise ConnectionClosedError(
                    f"pooled connection to {self.dest} closed mid-request"
                )
            raise NapletCommunicationError(
                f"request to {frame.dest} failed remotely: {waiter.error}"
            )
        assert waiter.payload is not None
        return waiter.payload, sent, waiter.nbytes

    def close(self) -> None:
        self._dead.set()
        try:
            self.sock.close()
        except OSError:
            pass
        with self._pending_lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for waiter in pending:
            waiter.error = "connection closed"
            waiter.event.set()


class ConnectionPool:
    """At most one live :class:`PooledConnection` per destination URN."""

    def __init__(
        self,
        dialer: Callable[[str], socket.socket],
        on_open: Callable[[str], None] | None = None,
        on_reuse: Callable[[str], None] | None = None,
        on_traffic: Callable[[Frame, int, int], None] | None = None,
    ) -> None:
        self._dialer = dialer
        self._on_open = on_open
        self._on_reuse = on_reuse
        self._on_traffic = on_traffic
        self._conns: dict[str, PooledConnection] = {}
        self._lock = threading.Lock()
        self._dest_locks: dict[str, threading.Lock] = {}
        self.opened = 0
        self.reused = 0

    def _dest_lock(self, dest: str) -> threading.Lock:
        with self._lock:
            lock = self._dest_locks.get(dest)
            if lock is None:
                lock = self._dest_locks[dest] = threading.Lock()
            return lock

    def _acquire(self, dest: str) -> tuple[PooledConnection, bool]:
        """Live connection for *dest*; second element is True when freshly dialed."""
        with self._lock:
            conn = self._conns.get(dest)
        if conn is not None and conn.alive:
            self.reused += 1
            if self._on_reuse is not None:
                self._on_reuse(dest)
            return conn, False
        with self._dest_lock(dest):
            # Re-check under the per-destination lock: another thread may
            # have redialed while we waited.
            with self._lock:
                conn = self._conns.get(dest)
            if conn is not None and conn.alive:
                self.reused += 1
                if self._on_reuse is not None:
                    self._on_reuse(dest)
                return conn, False
            sock = self._dialer(dest)
            conn = PooledConnection(sock, dest)
            with self._lock:
                self._conns[dest] = conn
            self.opened += 1
            if self._on_open is not None:
                self._on_open(dest)
            return conn, True

    def _invalidate(self, dest: str, conn: PooledConnection) -> None:
        conn.close()
        with self._lock:
            if self._conns.get(dest) is conn:
                del self._conns[dest]

    def _account(self, frame: Frame, sent: int, received: int) -> None:
        if self._on_traffic is not None:
            self._on_traffic(frame, sent, received)

    def request(self, frame: Frame, timeout: float | None = None) -> bytes:
        conn, fresh = self._acquire(frame.dest)
        try:
            payload, sent, received = conn.request_with_cost(frame, timeout)
            self._account(frame, sent, received)
            return payload
        except ConnectionClosedError:
            self._invalidate(frame.dest, conn)
            if fresh:
                raise
            # Stale keepalive: the peer closed while we were idle. Retry
            # once on a fresh connection; a second failure propagates.
            conn, _ = self._acquire(frame.dest)
            try:
                payload, sent, received = conn.request_with_cost(frame, timeout)
                self._account(frame, sent, received)
                return payload
            except ConnectionClosedError:
                self._invalidate(frame.dest, conn)
                raise

    def send(self, frame: Frame) -> None:
        conn, fresh = self._acquire(frame.dest)
        try:
            self._account(frame, conn.send(frame), 0)
        except ConnectionClosedError:
            self._invalidate(frame.dest, conn)
            if fresh:
                raise
            conn, _ = self._acquire(frame.dest)
            try:
                self._account(frame, conn.send(frame), 0)
            except ConnectionClosedError:
                self._invalidate(frame.dest, conn)
                raise

    def connection_to(self, dest: str) -> PooledConnection | None:
        """The live pooled connection toward *dest*, if any (test helper)."""
        with self._lock:
            return self._conns.get(dest)

    def live_destinations(self) -> list[str]:
        """Destination URNs with a live keepalive connection right now."""
        with self._lock:
            return sorted(
                dest for dest, conn in self._conns.items() if conn.alive
            )

    def stats(self) -> dict[str, int]:
        with self._lock:
            active = sum(1 for c in self._conns.values() if c.alive)
        return {"opened": self.opened, "reused": self.reused, "active": active}

    def close(self) -> None:
        with self._lock:
            conns = list(self._conns.values())
            self._conns.clear()
        for conn in conns:
            conn.close()
