"""Transport abstraction: wire frames and the endpoint interface.

Servers talk to each other in :class:`Frame` units — naplet transfers,
inter-naplet messages, directory events, landing-permission requests.  A
:class:`Transport` routes frames between named endpoints (server URNs of the
form ``naplet://<hostname>``).  Two implementations exist:

- :class:`repro.transport.inmemory.InMemoryTransport` — in-process routing
  with a latency/bandwidth model, per-link byte metering, and fault
  injection; the substrate for experiments at scale;
- :class:`repro.transport.tcp.TcpTransport` — real localhost TCP sockets,
  proving the protocol end-to-end outside one call stack.

Semantics shared by both: :meth:`Transport.send` is one-way fire-and-forget;
:meth:`Transport.request` is synchronous request/reply returning the
responder's payload.  Handlers run on the delivering thread and must not
block indefinitely.
"""

from __future__ import annotations

import abc
import threading
from dataclasses import dataclass, field, replace
from typing import Callable

from repro.core.errors import NapletCommunicationError
from repro.telemetry.metrics import MetricsRegistry
from repro.util.eventlog import EventLog

__all__ = [
    "Frame",
    "FrameKind",
    "FrameHandler",
    "Transport",
    "urn_of",
    "host_of",
]


class FrameKind:
    """Well-known frame kinds (plain strings for wire friendliness)."""

    LANDING_REQUEST = "landing-request"
    NAPLET_TRANSFER = "naplet-transfer"
    MESSAGE = "message"
    MESSAGE_CONFIRM = "message-confirm"
    DIRECTORY_EVENT = "directory-event"
    DIRECTORY_QUERY = "directory-query"
    LOCATE_QUERY = "locate-query"
    REPORT = "report"
    CONTROL = "control"
    CODEBASE_FETCH = "codebase-fetch"
    PING = "ping"
    LOAD = "load"


def urn_of(hostname: str) -> str:
    """Canonical server URN for a hostname."""
    if hostname.startswith("naplet://"):
        return hostname
    return f"naplet://{hostname}"


def host_of(urn: str) -> str:
    """Hostname carried by a URN (any scheme: naplet://, snmp://, …)."""
    _scheme, sep, rest = urn.partition("://")
    return rest if sep else urn


@dataclass
class Frame:
    """One unit on the wire.

    ``payload`` is opaque bytes (usually produced by the
    :class:`~repro.transport.serializer.NapletSerializer`); ``headers`` are
    small string pairs used for routing decisions without deserializing.
    """

    kind: str
    source: str
    dest: str
    payload: bytes = b""
    headers: dict[str, str] = field(default_factory=dict)
    # Correlation id: set by multiplexing transports so many concurrent
    # request/reply exchanges can share one connection.  ``None`` means the
    # frame travelled on a dedicated (or synchronous in-memory) channel.
    correlation_id: int | None = None
    # Out-of-band segments (pickle protocol 5): bytes-like blocks shipped
    # beside the payload.  The pooled TCP wire writes them as separate
    # frame segments with no re-copy; the in-memory transport hands them
    # over by reference.  Items may be memoryviews — transports that must
    # pickle the whole frame call :meth:`picklable` first.
    buffers: tuple = ()

    @property
    def size(self) -> int:
        """Approximate on-wire size in bytes (payload + buffers + header text)."""
        header_bytes = sum(len(k) + len(v) for k, v in self.headers.items())
        buffer_bytes = sum(
            b.nbytes if isinstance(b, memoryview) else len(b) for b in self.buffers
        )
        return (
            len(self.payload) + buffer_bytes + header_bytes
            + len(self.kind) + len(self.source) + len(self.dest)
        )

    def picklable(self) -> "Frame":
        """This frame with every buffer materialized to ``bytes``.

        Memoryviews do not pickle; the legacy (unpooled) wire paths that
        serialize the whole frame flatten them first — a copy, which is
        exactly the baseline those paths represent.
        """
        if all(isinstance(b, bytes) for b in self.buffers):
            return self
        return replace(self, buffers=tuple(bytes(b) for b in self.buffers))


FrameHandler = Callable[[Frame], bytes | None]


class Transport(abc.ABC):
    """Routes frames between registered endpoints.

    Every transport owns a small :class:`MetricsRegistry` of wire-level
    instruments (frames, bytes, send latency, by frame kind); concrete
    implementations call :meth:`_observe_wire` once per frame moved.
    """

    def __init__(self) -> None:
        self._handlers: dict[str, FrameHandler] = {}
        self._lock = threading.RLock()
        self.metrics = MetricsRegistry()
        self.events = EventLog()
        self._bound_events: dict[str, EventLog] = {}
        self._wire_frames = self.metrics.counter(
            "wire_frames_total", "Frames moved by this transport, by kind"
        )
        self._wire_bytes = self.metrics.counter(
            "wire_bytes_total", "On-wire bytes moved by this transport, by kind"
        )
        self._wire_send_seconds = self.metrics.histogram(
            "wire_send_seconds", "Per-frame delivery latency at this transport"
        )
        self._wire_connections = self.metrics.counter(
            "wire_connections_opened_total",
            "Connections (real or logical) opened by this transport",
        )
        self._wire_pool_reuse = self.metrics.counter(
            "wire_pool_reuse_total",
            "Frames that rode an already-open pooled connection",
        )
        self._wire_dropped_connections = self.metrics.counter(
            "wire_dropped_connections_total",
            "Server-side connections dropped on error, by endpoint",
        )
        # Per-endpoint byte accounting (perf plane): simnet's TrafficMeter
        # already splits bytes per host; these counters give real TCP the
        # same answer, on the same metric names for both transports.
        self._bytes_sent = self.metrics.counter(
            "bytes_sent_total", "Wire bytes sent, by endpoint host (egress)"
        )
        self._bytes_received = self.metrics.counter(
            "bytes_received_total", "Wire bytes received, by endpoint host (ingress)"
        )

    def _observe_wire(self, frame: Frame, duration: float) -> None:
        """Account one frame's trip (called by concrete send/request)."""
        self._wire_frames.inc(kind=frame.kind)
        self._wire_bytes.inc(frame.size, kind=frame.kind)
        self._wire_send_seconds.observe(duration)

    # -- byte accounting --------------------------------------------------- #

    def _account_sent(self, endpoint: str, nbytes: int) -> None:
        """Attribute *nbytes* of egress to *endpoint* (URN or hostname)."""
        if nbytes > 0:
            self._bytes_sent.inc(nbytes, endpoint=host_of(endpoint))

    def _account_received(self, endpoint: str, nbytes: int) -> None:
        """Attribute *nbytes* of ingress to *endpoint* (URN or hostname)."""
        if nbytes > 0:
            self._bytes_received.inc(nbytes, endpoint=host_of(endpoint))

    def endpoint_bytes(self, endpoint: str) -> tuple[int, int]:
        """(egress, ingress) wire bytes accounted to *endpoint* so far."""
        host = host_of(endpoint)
        return (
            int(self._bytes_sent.value(endpoint=host)),
            int(self._bytes_received.value(endpoint=host)),
        )

    # -- connection accounting -------------------------------------------- #

    def connections_opened(self) -> int:
        """Connections this transport has opened so far (all destinations)."""
        return int(self._wire_connections.total())

    def pool_reuse_count(self) -> int:
        """Frames that reused a pooled connection instead of dialing."""
        return int(self._wire_pool_reuse.total())

    def live_peers(self, source_urn: str) -> list[str]:
        """Endpoint URNs reachable from *source_urn* without dialing.

        The load observatory emits heartbeats only toward these peers, so
        a digest by construction rides channels an earlier exchange opened
        and never pays a dial of its own.  The base transport keeps no
        connections; pool- and link-aware implementations override this.
        """
        return []

    def _note_connection_opened(self, dest: str) -> None:
        self._wire_connections.inc(dest=dest)

    def _note_connection_reused(self, dest: str) -> None:
        self._wire_pool_reuse.inc(dest=dest)

    def _record_connection_error(self, urn: str, error: BaseException) -> None:
        """Account a server-side connection failure instead of losing it.

        The drop is counted on the transport metrics and recorded both in
        the transport's own :class:`EventLog` and in any log bound to the
        endpoint via :meth:`bind_event_log` (the owning server's log).
        """
        self._wire_dropped_connections.inc(endpoint=urn)
        detail = {"endpoint": urn, "error": f"{type(error).__name__}: {error}"}
        self.events.record("transport-connection-dropped", **detail)
        with self._lock:
            bound = self._bound_events.get(urn)
        if bound is not None:
            bound.record("transport-connection-dropped", **detail)

    def bind_event_log(self, urn: str, events: EventLog) -> None:
        """Route connection-level failures at *urn* into *events* too."""
        with self._lock:
            self._bound_events[urn] = events

    # -- endpoint management --------------------------------------------- #

    def register(self, urn: str, handler: FrameHandler) -> None:
        with self._lock:
            if urn in self._handlers:
                raise NapletCommunicationError(f"endpoint already registered: {urn}")
            self._handlers[urn] = handler

    def unregister(self, urn: str) -> None:
        with self._lock:
            self._handlers.pop(urn, None)
            self._bound_events.pop(urn, None)

    def endpoints(self) -> list[str]:
        with self._lock:
            return list(self._handlers)

    def is_registered(self, urn: str) -> bool:
        with self._lock:
            return urn in self._handlers

    def _handler_for(self, urn: str) -> FrameHandler:
        with self._lock:
            handler = self._handlers.get(urn)
        if handler is None:
            raise NapletCommunicationError(f"no endpoint registered at {urn}")
        return handler

    # -- wire operations --------------------------------------------------- #

    @abc.abstractmethod
    def send(self, frame: Frame) -> None:
        """Deliver *frame* one-way; raises on unreachable destination."""

    @abc.abstractmethod
    def request(self, frame: Frame, timeout: float | None = None) -> bytes:
        """Deliver *frame* and return the handler's reply payload."""

    def close(self) -> None:
        """Release transport resources (sockets, threads)."""
