"""Delta shipping support: content hashes and per-naplet base caches.

The v2 envelope (DESIGN.md §6.7) ships a naplet as a *per-field* image —
``{field name: pickled bytes}`` — instead of one opaque pickle.  That makes
two caches possible:

- the **sender** keeps the last image it dumped per naplet
  (:class:`DeltaCache`), so an unchanged field's bytes and hash are reused
  without re-pickling, and a changed hop ships only the changed fields;
- the **receiver** keeps the last image it accepted per naplet (also a
  :class:`DeltaCache`), so an incoming delta can be patched onto the base.

Cache entries are keyed by naplet id and carry the image's content hash;
both ends agree a delta applies only when the receiver acks the exact base
hash the sender remembers.  All hashes are blake2b-128 hex digests —
content addresses, not security boundaries (the credential signature
guards integrity).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "DeltaCache",
    "FieldEntry",
    "ImageRecord",
    "content_hash",
    "image_hash",
]


def content_hash(data: bytes | memoryview) -> str:
    """blake2b-128 hex digest of *data* — the wire's content address."""
    return hashlib.blake2b(bytes(data), digest_size=16).hexdigest()


def image_hash(field_hashes: dict[str, str]) -> str:
    """Hash of a whole per-field image, order-independent.

    Derived from the sorted ``name:hash`` pairs so sender and receiver
    compute identical image hashes without exchanging field bytes.
    """
    h = hashlib.blake2b(digest_size=16)
    for name in sorted(field_hashes):
        h.update(name.encode("utf-8"))
        h.update(b"\x00")
        h.update(field_hashes[name].encode("ascii"))
        h.update(b"\x00")
    return h.hexdigest()


@dataclass
class FieldEntry:
    """One field of a cached image.

    ``value`` holds a *strong* reference to the live object the bytes were
    pickled from — identity comparison against it is only meaningful while
    the object cannot have been garbage collected and its ``id`` reused.
    ``fingerprint`` is the value's ``__delta_fingerprint__`` at pickle
    time (None when the protocol is absent); ``stamps`` are the shipping
    stamps encountered while pickling this field, kept so eager code
    bundles survive even when the field's bytes are later reused.
    """

    data: bytes
    hash: str
    value: Any
    fingerprint: Any | None = None
    stamps: frozenset[tuple[str, str, str]] = frozenset()


@dataclass
class ImageRecord:
    """A full per-field image of one naplet, as last dumped/accepted."""

    hash: str
    cls_ref: Any
    fields: dict[str, FieldEntry] = field(default_factory=dict)

    def field_hashes(self) -> dict[str, str]:
        return {name: entry.hash for name, entry in self.fields.items()}


class DeltaCache:
    """Thread-safe LRU of :class:`ImageRecord` keyed by naplet id string.

    Bounded because a long-lived server sees many one-shot naplets; the
    protocol tolerates eviction — a sender that lost its record ships a
    full image, a receiver that lost its base acks ``need_full`` and the
    sender re-ships.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("delta cache capacity must be >= 1")
        self._capacity = capacity
        self._records: OrderedDict[str, ImageRecord] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, nid: str, base_hash: str | None = None) -> ImageRecord | None:
        """The cached image for *nid*, optionally requiring an exact hash."""
        with self._lock:
            record = self._records.get(nid)
            if record is None or (base_hash is not None and record.hash != base_hash):
                self.misses += 1
                return None
            self._records.move_to_end(nid)
            self.hits += 1
            return record

    def peek(self, nid: str) -> ImageRecord | None:
        """Like :meth:`get` but a pure probe: no stats, no LRU promotion.

        The pickle X-ray's delta view uses this so inspecting a naplet
        mid-flight cannot perturb the cache order or the hit counters.
        """
        with self._lock:
            return self._records.get(nid)

    def put(self, nid: str, record: ImageRecord) -> None:
        with self._lock:
            self._records[nid] = record
            self._records.move_to_end(nid)
            while len(self._records) > self._capacity:
                self._records.popitem(last=False)
                self.evictions += 1

    def drop(self, nid: str) -> None:
        with self._lock:
            self._records.pop(nid, None)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __contains__(self, nid: str) -> bool:
        with self._lock:
            return nid in self._records

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "size": len(self._records),
                "capacity": self._capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
