"""Reactive management: trap-driven naplet dispatch.

Management by exception: instead of polling every device all the time, the
station idles until an SNMP trap arrives, then dispatches a diagnosis
naplet *to the reporting device* to investigate on-site and report a
digest home.  This combines the two halves of the reproduction — the
asynchronous SNMP substrate (traps) and the mobile-agent core — into the
workflow the paper's network-management section motivates.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.core.listener import NapletListener
from repro.core.naplet import Naplet
from repro.itinerary.itinerary import Itinerary
from repro.itinerary.operable import ResultReport
from repro.itinerary.pattern import SeqPattern
from repro.man.service import SERVICE_NAME
from repro.snmp.trap import Trap, TrapSink, TrapType

if TYPE_CHECKING:  # pragma: no cover
    from repro.server.server import NapletServer

__all__ = ["DiagnosisNaplet", "ReactiveDispatcher"]


class DiagnosisNaplet(Naplet):
    """Walks the device's interface table on-site and summarises its health."""

    def __init__(self, name: str, trap_type: str, **kwargs: Any) -> None:
        super().__init__(name, **kwargs)
        self.trap_type = trap_type

    def on_start(self) -> None:
        context = self.require_context()
        channel = context.service_channel(SERVICE_NAME)
        channel.get_naplet_writer().write(("walk", "1.3.6.1.2.1.2"))
        interface_table = channel.get_naplet_reader().read()
        down = [
            oid
            for oid, value in interface_table
            if oid.startswith("1.3.6.1.2.1.2.2.1.8.") and value == 2
        ]
        channel.get_naplet_writer().write_line("sysUpTime;cpuLoad")
        vitals = channel.get_naplet_reader().read_line()
        self.state.set(
            "diagnosis",
            {
                "device": context.hostname,
                "trap": self.trap_type,
                "interfaces_down": [int(oid.rsplit(".", 1)[1]) for oid in down],
                "uptime_ticks": vitals["sysUpTime"],
                "cpu_load": vitals["cpuLoad"],
            },
        )
        self.travel()


@dataclass
class _Dispatch:
    trap: Trap
    naplet_id: Any


class ReactiveDispatcher:
    """Dispatches a diagnosis naplet for every trap the sink receives.

    Wire it up as the TrapSink's callback, or call :meth:`handle_trap`
    directly.  Dispatches run on a small worker thread so trap delivery
    (which happens on the sender's thread) never blocks on migrations.
    """

    def __init__(
        self,
        station_server: "NapletServer",
        listener: NapletListener | None = None,
        naplet_factory: Callable[[Trap], Naplet] | None = None,
        owner: str = "noc",
    ) -> None:
        self.station_server = station_server
        self.listener = listener or NapletListener()
        self.owner = owner
        self._factory = naplet_factory or self._default_factory
        self._dispatches: list[_Dispatch] = []
        self._lock = threading.Lock()
        self.dispatch_errors = 0

    @staticmethod
    def _default_factory(trap: Trap) -> Naplet:
        agent = DiagnosisNaplet(
            name=f"diagnose-{trap.source}", trap_type=str(trap.trap_type)
        )
        agent.set_itinerary(
            Itinerary(
                SeqPattern.of_servers(
                    [trap.source], post_action=ResultReport("diagnosis")
                )
            )
        )
        return agent

    # -- the TrapSink callback ------------------------------------------- #

    def handle_trap(self, trap: Trap) -> None:
        threading.Thread(
            target=self._dispatch, args=(trap,), name=f"react-{trap.source}", daemon=True
        ).start()

    def _dispatch(self, trap: Trap) -> None:
        try:
            agent = self._factory(trap)
            nid = self.station_server.launch(
                agent, owner=self.owner, listener=self.listener
            )
        except Exception:
            with self._lock:
                self.dispatch_errors += 1
            return
        with self._lock:
            self._dispatches.append(_Dispatch(trap=trap, naplet_id=nid))

    # -- observation -------------------------------------------------------- #

    @property
    def dispatch_count(self) -> int:
        with self._lock:
            return len(self._dispatches)

    def dispatches(self) -> list[_Dispatch]:
        with self._lock:
            return list(self._dispatches)

    def sink_for(self, transport, hostname: str) -> TrapSink:
        """Convenience: a TrapSink already wired to this dispatcher."""
        return TrapSink(transport, hostname, callback=self.handle_trap)
