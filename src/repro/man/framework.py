"""MAN framework assembly (paper §6, Fig. 3).

Wires the full mobile-agent network-management stack over a virtual
network: per-device ManagedDevice + SnmpAgent (plus an SnmpEndpoint so the
conventional station can poll it remotely), a NapletServer on every device
with the NetManagement privileged service installed, and a management
station host acting as the Mobile Agent Producer (MAP) and CNMP poller.

The framework is the measurement harness for experiments E3/E4: both
approaches run over the *same* metered transport, so per-link byte counts
and wall/virtual times are directly comparable.
"""

from __future__ import annotations

import dataclasses
import queue
from typing import Any, Sequence

from repro.core.errors import NapletError
from repro.core.listener import NapletListener
from repro.itinerary.itinerary import Itinerary
from repro.man.naplet import NMItinerary, NMNaplet, SeqNMItinerary
from repro.man.service import SERVICE_NAME, net_management_factory
from repro.server.server import NapletServer, ServerConfig
from repro.simnet.network import VirtualNetwork
from repro.simnet.topology import star
from repro.snmp.agent import SnmpAgent, SnmpEndpoint
from repro.snmp.device import DeviceProfile, ManagedDevice
from repro.snmp.mib import WELL_KNOWN_NAMES
from repro.snmp.station import ManagementStation

__all__ = ["ManFramework", "DEFAULT_PARAMETERS"]

DEFAULT_PARAMETERS = ("sysName", "sysUpTime", "ipInReceives", "tcpCurrEstab", "cpuLoad")


class ManFramework:
    """One ready-to-measure MAN deployment."""

    def __init__(
        self,
        n_devices: int,
        latency: float = 0.0,
        bandwidth: float = 0.0,
        station: str = "station",
        config: ServerConfig | None = None,
        sleep_scale: float = 0.0,
        device_seed: int = 42,
    ) -> None:
        self.station_host = station
        self.network = VirtualNetwork(
            star(n_devices, center=station, latency=latency, bandwidth=bandwidth),
            sleep_scale=sleep_scale,
        )
        self.device_hosts: list[str] = sorted(
            h for h in self.network.hostnames() if h != station
        )
        base_config = config or ServerConfig()

        self.devices: dict[str, ManagedDevice] = {}
        self.agents: dict[str, SnmpAgent] = {}
        self.endpoints: dict[str, SnmpEndpoint] = {}
        self.servers: dict[str, NapletServer] = {}

        for index, hostname in enumerate(self.device_hosts):
            device = ManagedDevice(
                DeviceProfile(hostname=hostname), seed=device_seed + index
            )
            agent = SnmpAgent(device)
            self.devices[hostname] = device
            self.agents[hostname] = agent
            self.endpoints[hostname] = SnmpEndpoint(
                agent, self.network.transport, hostname
            )
            server = NapletServer.attach(
                self.network.host(hostname), dataclasses.replace(base_config)
            )
            server.register_privileged_service(
                SERVICE_NAME, net_management_factory(agent)
            )
            self.servers[hostname] = server

        self.station_server = NapletServer.attach(
            self.network.host(station), dataclasses.replace(base_config)
        )
        self.servers[station] = self.station_server
        self.station = ManagementStation(self.network.transport, hostname=station)

    # ------------------------------------------------------------------ #
    # Mobile-agent collection
    # ------------------------------------------------------------------ #

    def _itinerary(self, mode: str) -> Itinerary:
        if mode == "par":
            return NMItinerary(self.device_hosts)
        if mode == "seq":
            return SeqNMItinerary(self.device_hosts)
        raise NapletError(f"unknown MAN itinerary mode: {mode!r} (use 'par' or 'seq')")

    def collect_with_naplets(
        self,
        parameters: Sequence[str] = DEFAULT_PARAMETERS,
        mode: str = "par",
        owner: str = "nm",
        timeout: float = 30.0,
    ) -> dict[str, dict[str, Any]]:
        """Dispatch NMNaplet(s) and assemble the device-status table.

        ``mode='par'`` spawns one child per device (paper's broadcast);
        ``mode='seq'`` sends a single tour agent.  Returns
        ``{device: {parameter: value}}``.
        """
        listener = NapletListener()
        agent = NMNaplet(
            name=f"nm-{mode}",
            servers=self.device_hosts,
            parameters=list(parameters),
            itinerary=self._itinerary(mode),
        )
        self.station_server.launch(agent, owner=owner, listener=listener)
        expected_reports = len(self.device_hosts) if mode == "par" else 1
        table: dict[str, dict[str, Any]] = {}
        try:
            for envelope in listener.reports(expected_reports, timeout=timeout):
                table.update(envelope.payload)
        except queue.Empty:
            raise NapletError(
                f"MAN collection incomplete: got {len(table)}/{len(self.device_hosts)} devices"
            ) from None
        return table

    # ------------------------------------------------------------------ #
    # Conventional (CNMP) collection
    # ------------------------------------------------------------------ #

    def collect_with_station(
        self,
        parameters: Sequence[str] = DEFAULT_PARAMETERS,
        batch: bool = False,
    ) -> dict[str, dict[str, Any]]:
        """Centralized polling baseline; same output shape as the naplets."""
        oids = [WELL_KNOWN_NAMES[p] if p in WELL_KNOWN_NAMES else p for p in parameters]
        raw = self.station.poll_all(self.device_hosts, oids, batch=batch)
        table: dict[str, dict[str, Any]] = {}
        reverse = {v: k for k, v in WELL_KNOWN_NAMES.items()}
        for host, values in raw.items():
            table[host] = {reverse.get(oid, oid): value for oid, value in values.items()}
        return table

    # ------------------------------------------------------------------ #
    # Measurement helpers
    # ------------------------------------------------------------------ #

    def station_link_bytes(self) -> int:
        """Bytes that crossed the management station's links (both ways)."""
        return self.network.meter.host_total(self.station_host)

    def total_bytes(self) -> int:
        return self.network.meter.total_bytes

    def virtual_seconds(self) -> float:
        return self.network.clock.virtual_time

    def reset_measurement(self) -> None:
        self.network.meter.reset()
        self.network.clock.reset()

    def wait_idle(self, timeout: float = 10.0) -> None:
        for server in self.servers.values():
            server.wait_idle(timeout)

    def shutdown(self) -> None:
        for endpoint in self.endpoints.values():
            endpoint.close()
        self.network.shutdown()
