"""NetManagement privileged service (paper §6.1).

The Java original bridges naplets to the AdventNet SNMP API; here the
service is bound to the host's local :class:`~repro.snmp.agent.SnmpAgent`
(our AdventNet stand-in) and serves commands over its ServiceChannel:

- the paper's text protocol — a ``"name1;name2;..."`` string — answers with
  a ``{name: value}`` dict resolved through the well-known-name table;
- structured commands ``("get", [oids...])``, ``("walk", root_oid)`` and
  ``("set", oid, value)`` expose the full local-agent surface.

One service instance runs per channel, on its own thread, until the naplet
side closes (EOF) — and can serve any number of inquiries before that, as
the paper prescribes.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.server.service_channel import EOF, PrivilegedService
from repro.snmp.agent import SnmpAgent
from repro.snmp.mib import WELL_KNOWN_NAMES
from repro.snmp.oid import OID
from repro.snmp.protocol import GetRequest, SetRequest, VarBind

__all__ = ["NetManagement", "net_management_factory", "SERVICE_NAME"]

SERVICE_NAME = "serviceImpl.NetManagement"


class NetManagement(PrivilegedService):
    """Channel-served gateway to the local SNMP agent."""

    def __init__(self, agent: SnmpAgent, community: str = "public") -> None:
        super().__init__()
        self.agent = agent
        self.community = community

    # -- command handling -------------------------------------------------- #

    def _resolve(self, name: str) -> OID:
        """Accept either a well-known parameter name or a dotted OID."""
        if name in WELL_KNOWN_NAMES:
            return OID.parse(WELL_KNOWN_NAMES[name])
        return OID.parse(name)

    def _retrieve(self, names: list[str]) -> dict[str, Any]:
        """The paper's ``retrieve()``: one local get per parameter."""
        out: dict[str, Any] = {}
        for name in names:
            try:
                oid = self._resolve(name)
            except ValueError:
                out[name] = None
                continue
            response = self.agent.handle(GetRequest(self.community, (oid,)))
            out[name] = response.bindings[0].value if response.ok and response.bindings else None
        return out

    def _execute(self, command: Any) -> Any:
        if isinstance(command, str):
            names = [part for part in command.split(";") if part]
            return self._retrieve(names)
        if isinstance(command, (tuple, list)) and command:
            op = command[0]
            if op == "get":
                return self._retrieve(list(command[1]))
            if op == "walk":
                bindings = self.agent.walk(command[1], community=self.community)
                return [(str(b.oid), b.value) for b in bindings]
            if op == "set":
                _op, oid, value = command
                response = self.agent.handle(
                    SetRequest(self.community, (VarBind(OID.parse(oid), value),))
                )
                return {"ok": response.ok, "error_status": response.error_status}
        return {"error": f"unrecognised NetManagement command: {command!r}"}

    def run(self) -> None:
        while True:
            command = self.input.read()
            if command is EOF:
                return
            self.output.write(self._execute(command))


def net_management_factory(agent: SnmpAgent, community: str = "public") -> Callable[[], NetManagement]:
    """Factory suitable for ``register_privileged_service``."""

    def _factory() -> NetManagement:
        return NetManagement(agent, community)

    return _factory
