"""MAN: Mobile Agents for Network management (paper §6)."""

from repro.man.baseline import ComparisonResult, ComparisonRunner
from repro.man.framework import DEFAULT_PARAMETERS, ManFramework
from repro.man.reactive import DiagnosisNaplet, ReactiveDispatcher
from repro.man.naplet import (
    DeviceStatusReport,
    NMItinerary,
    NMNaplet,
    SeqNMItinerary,
)
from repro.man.service import SERVICE_NAME, NetManagement, net_management_factory

__all__ = [
    "ManFramework",
    "DEFAULT_PARAMETERS",
    "ComparisonRunner",
    "ComparisonResult",
    "NMNaplet",
    "NMItinerary",
    "SeqNMItinerary",
    "DeviceStatusReport",
    "NetManagement",
    "net_management_factory",
    "SERVICE_NAME",
    "ReactiveDispatcher",
    "DiagnosisNaplet",
]
