"""Measured comparison runner: mobile agents vs. conventional polling.

Wraps one :class:`~repro.man.framework.ManFramework` and produces
:class:`ComparisonResult` rows — station-link bytes, total bytes, virtual
network seconds and wall time — for each approach under identical
workloads.  The benchmark harness (experiments E3/E4) prints its tables
from these rows.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Sequence

from repro.man.framework import DEFAULT_PARAMETERS, ManFramework

__all__ = ["ComparisonResult", "ComparisonRunner"]


@dataclass(frozen=True)
class ComparisonResult:
    """One measured collection round."""

    approach: str  # "cnmp", "cnmp-batch", "agent-par", "agent-seq"
    n_devices: int
    n_parameters: int
    station_link_bytes: int
    total_bytes: int
    virtual_seconds: float
    wall_seconds: float
    table: dict[str, dict[str, Any]]

    @property
    def complete(self) -> bool:
        return len(self.table) == self.n_devices


class ComparisonRunner:
    """Runs both approaches over one framework with clean meters."""

    def __init__(self, framework: ManFramework) -> None:
        self.framework = framework

    def _measure(self, approach: str, parameters: Sequence[str], action) -> ComparisonResult:
        framework = self.framework
        framework.wait_idle()
        framework.reset_measurement()
        start = time.perf_counter()
        table = action()
        framework.wait_idle()
        wall = time.perf_counter() - start
        return ComparisonResult(
            approach=approach,
            n_devices=len(framework.device_hosts),
            n_parameters=len(parameters),
            station_link_bytes=framework.station_link_bytes(),
            total_bytes=framework.total_bytes(),
            virtual_seconds=framework.virtual_seconds(),
            wall_seconds=wall,
            table=table,
        )

    def run_cnmp(
        self, parameters: Sequence[str] = DEFAULT_PARAMETERS, batch: bool = False
    ) -> ComparisonResult:
        approach = "cnmp-batch" if batch else "cnmp"
        return self._measure(
            approach,
            parameters,
            lambda: self.framework.collect_with_station(parameters, batch=batch),
        )

    def run_agents(
        self, parameters: Sequence[str] = DEFAULT_PARAMETERS, mode: str = "par"
    ) -> ComparisonResult:
        return self._measure(
            f"agent-{mode}",
            parameters,
            lambda: self.framework.collect_with_naplets(parameters, mode=mode),
        )

    def run_all(
        self, parameters: Sequence[str] = DEFAULT_PARAMETERS
    ) -> list[ComparisonResult]:
        return [
            self.run_cnmp(parameters, batch=False),
            self.run_cnmp(parameters, batch=True),
            self.run_agents(parameters, mode="seq"),
            self.run_agents(parameters, mode="par"),
        ]
