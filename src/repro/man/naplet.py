"""NMNaplet: the network-management agent (paper §6.2).

On each device the naplet opens the ``serviceImpl.NetManagement`` channel,
sends its MIB parameter list through the NapletWriter, reads the result
from the NapletReader, stores it under ``DeviceStatus`` in a protected
state space, and travels on.  Reporting follows the itinerary: the default
``NMItinerary`` is the paper's broadcast (Par over singletons — one spawned
child per device, each reporting its own results home); ``SeqNMItinerary``
sends a single agent around all devices and reports the accumulated table
after the last visit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.core.listener import ListenerRef
from repro.core.naplet import Naplet
from repro.core.state import ProtectedNapletState
from repro.itinerary.itinerary import Itinerary
from repro.itinerary.operable import Operable
from repro.itinerary.pattern import JoinPolicy, ParPattern, SeqPattern
from repro.man.service import SERVICE_NAME

if TYPE_CHECKING:  # pragma: no cover
    pass

__all__ = ["NMNaplet", "NMItinerary", "SeqNMItinerary", "DeviceStatusReport"]


@dataclass(frozen=True)
class DeviceStatusReport(Operable):
    """Report the gathered DeviceStatus table to the home listener."""

    def operate(self, naplet: Naplet) -> None:
        if naplet.listener is None:
            return
        naplet.report_home(dict(naplet.state.get("DeviceStatus") or {}))


class NMItinerary(Itinerary):
    """The paper's broadcast itinerary: one child naplet per device."""

    def __init__(self, servers: Sequence[str], join: JoinPolicy = JoinPolicy.TERMINATE) -> None:
        super().__init__()
        act = DeviceStatusReport()
        self.set_itinerary_pattern(
            ParPattern.of_servers(list(servers), per_branch_action=act, join=join)
        )


class SeqNMItinerary(Itinerary):
    """Single-agent tour: visit all devices, report after the last one."""

    def __init__(self, servers: Sequence[str]) -> None:
        super().__init__()
        self.set_itinerary_pattern(
            SeqPattern.of_servers(list(servers), post_action=DeviceStatusReport())
        )


class NMNaplet(Naplet):
    """Mobile network-management agent."""

    def __init__(
        self,
        name: str,
        servers: Sequence[str],
        parameters: str | Sequence[str],
        listener: ListenerRef | None = None,
        itinerary: Itinerary | None = None,
    ) -> None:
        super().__init__(name, listener=listener)
        if isinstance(parameters, str):
            self.parameters = parameters
        else:
            self.parameters = ";".join(parameters)
        self.set_naplet_state(ProtectedNapletState())
        self.state.set("DeviceStatus", {})
        self.set_itinerary(itinerary if itinerary is not None else NMItinerary(servers))

    def on_start(self) -> None:
        context = self.require_context()
        server_name = context.hostname
        channel = context.service_channel(SERVICE_NAME)
        out = channel.get_naplet_writer()
        out.write_line(self.parameters)  # pass parameters to the server
        result = channel.get_naplet_reader().read_line()
        status = dict(self.state.get("DeviceStatus") or {})
        status[server_name] = result
        self.state.set("DeviceStatus", status)
        self.travel()
