"""NapletServer: the dock of naplets (paper §2.2, Fig. 2).

Assembles the seven architecture components around one transport endpoint:

====================  =====================================================
NapletMonitor         confined execution, resource accounting (monitor.py)
NapletSecurityManager signature checks + access-control matrix (security.py)
ResourceManager       open/privileged services, ServiceChannels
NapletManager         naplet table, footprints, launching, listeners
Messenger             post-office messaging, forwarding, special mailbox
Navigator             LAUNCH/LANDING migration protocol
Locator               tracing/location with cache (directory-mode aware)
====================  =====================================================

A host contains at most one NapletServer; servers run autonomously and
cooperatively form the naplet space.  All inter-server interaction goes
through frames handled in :meth:`_handle_frame`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

import pickle

from repro.codeshipping.codebase import CodeBaseRegistry, CodeCache
from repro.core.credential import Credential, SigningAuthority
from repro.core.errors import NapletError
from repro.core.listener import NapletListener
from repro.core.naplet_id import NapletID
from repro.faults.retry import RetryPolicy, no_retry
from repro.server.directory import DirectoryClient, DirectoryMode, NapletDirectory
from repro.server.locator import Locator
from repro.server.manager import NapletManager
from repro.server.messages import SystemControl
from repro.server.messenger import Messenger
from repro.server.monitor import NapletMonitor, ResourceQuota
from repro.server.navigator import Navigator
from repro.server.resource_manager import ResourceManager
from repro.server.security import NapletSecurityManager, SecurityPolicy
from repro.telemetry.exposition import ServerTelemetry, TelemetryService
from repro.telemetry.journal import JournalService, SpaceJournal
from repro.transport.base import Frame, FrameKind, Transport, urn_of
from repro.transport.serializer import NapletSerializer
from repro.util.eventlog import EventLog

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.naplet import Naplet
    from repro.simnet.host import VirtualHost
    from repro.simnet.network import VirtualNetwork

__all__ = ["ServerConfig", "NapletServer"]


@dataclass
class ServerConfig:
    """Per-server knobs; the defaults give a working research posture."""

    directory_mode: DirectoryMode = DirectoryMode.HOME
    directory_urn: str | None = None  # required for CENTRAL mode
    eager_code: bool = False
    max_residents: int | None = None
    max_residents_per_owner: int | None = None
    default_quota: ResourceQuota = field(default_factory=ResourceQuota)
    quota_policy: Callable[[Credential], ResourceQuota | None] | None = None
    policy: SecurityPolicy = field(default_factory=SecurityPolicy.permissive)
    require_signature: bool = True
    locator_cache_ttl: float = 5.0
    locator_cache_capacity: int | None = 10_000  # LRU bound; None = unbounded
    codebase_host: str | None = None  # where lazy code fetches are billed from
    telemetry_enabled: bool = True  # False: no-op metrics/tracer (benchmarks)
    # Single-round-trip migration: piggyback the credential on the transfer
    # frame and register depart+arrival in one combined directory event.
    # Controls both initiating the fast path and accepting it; a server
    # with this off answers fast-path transfers with an "unsupported" ack
    # and the source falls back to the two-phase protocol.
    migration_fast_path: bool = True
    # Delta state shipping (DESIGN.md §6.7): repeat hops ship only changed
    # fields as a v2 envelope against a base image the destination acked.
    # Off, the server emits and accepts only v1 full images — the v1-only
    # peer posture; senders that see its rejection downgrade transparently.
    delta_shipping: bool = True
    delta_cache_capacity: int = 64  # base images kept per server (LRU)
    # Resilience policies (DESIGN.md §6.3).  The defaults are the
    # single-attempt policies — exactly the historical give-up behavior —
    # so existing spaces are unaffected until a config opts in.
    migration_retry: RetryPolicy = field(default_factory=no_retry)
    message_retry: RetryPolicy = field(default_factory=no_retry)
    dead_letter_capacity: int = 256
    # Health plane (DESIGN.md §6.4): background sampler + watchdog.  It is
    # dormant whenever telemetry is disabled; all work happens off the hot
    # path on its own thread at ``health_cadence`` seconds per pass.
    health_enabled: bool = True
    health_cadence: float = 0.25
    health_stuck_deadline: float = 30.0  # no-progress watchdog deadline
    health_profile_window: int = 240  # samples kept per naplet profile
    health_profile_capacity: int = 512  # naplet profiles kept (LRU)
    # Flight recorder (DESIGN.md §6.5): the per-server causal event journal.
    # Dormant whenever telemetry is disabled.  ``journal_time_source`` lets
    # tests run servers with deliberately skewed wall clocks to prove the
    # hybrid logical clock keeps the merged timeline causally consistent.
    journal_enabled: bool = True
    journal_capacity: int = 4096
    journal_time_source: Callable[[], float] | None = None
    # Load observatory (DESIGN.md §6.8): heartbeat LoadDigests ride
    # already-open connections, merge into a per-server SpaceView, and —
    # with ``load_aware_navigation`` on — reorder Alt/Par expansion toward
    # the least-loaded eligible server.  Dormant whenever telemetry is
    # disabled; a peer whose digest outlives ``load_stale_after`` decays
    # to unknown and navigation falls back to declaration order.
    observatory_enabled: bool = True
    load_cadence: float = 0.5
    load_stale_after: float = 5.0
    load_aware_navigation: bool = True


class NapletServer:
    """One server in the naplet space."""

    def __init__(
        self,
        hostname: str,
        transport: Transport,
        authority: SigningAuthority,
        code_registry: CodeBaseRegistry,
        config: ServerConfig | None = None,
        network: "VirtualNetwork | None" = None,
    ) -> None:
        self.hostname = hostname
        self.urn = urn_of(hostname)
        self.transport = transport
        self.authority = authority
        self.code_registry = code_registry
        self.config = config or ServerConfig()
        self.network = network
        self.events = EventLog()
        self.telemetry = ServerTelemetry(hostname, enabled=self.config.telemetry_enabled)

        # Flight recorder: one causal journal fed by every event source.
        # The shared EventLog (Locator, Monitor, CodeCache, transport drops,
        # Messenger and Navigator all write to it) and the tracer feed it
        # through observers, so components never know the journal exists.
        self.journal = SpaceJournal(
            hostname,
            capacity=self.config.journal_capacity,
            enabled=self.config.telemetry_enabled and self.config.journal_enabled,
            time_source=self.config.journal_time_source,
            records_counter=self.telemetry.registry.counter(
                "naplet_journal_records_total",
                "Flight-recorder records appended, by event kind",
            ),
        )
        self.events.on_record = self.journal.observe_event
        self.telemetry.tracer.on_span = self.journal.observe_span
        self.telemetry.registry.gauge_fn(
            "naplet_journal_depth",
            "Records currently held in the flight-recorder ring",
            lambda: float(self.journal.depth),
        )
        self.telemetry.registry.gauge_fn(
            "naplet_journal_dropped_records",
            "Flight-recorder records discarded by the ring bound",
            lambda: float(self.journal.dropped),
        )

        if (
            self.config.directory_mode is DirectoryMode.CENTRAL
            and self.config.directory_urn is None
        ):
            raise NapletError("CENTRAL directory mode requires config.directory_urn")

        self.serializer = NapletSerializer(
            registry=code_registry,
            eager_code=self.config.eager_code,
            observer=self.telemetry.serializer_observer(),
            delta_shipping=self.config.delta_shipping,
            delta_cache_capacity=self.config.delta_cache_capacity,
        )
        self.code_cache = CodeCache(
            code_registry, fetch_observer=self._on_code_fetch, event_log=self.events
        )

        # -- the seven components -------------------------------------- #
        self.security = NapletSecurityManager(
            policy=self.config.policy,
            authority=authority,
            require_signature=self.config.require_signature,
        )
        self.monitor = NapletMonitor(
            hostname, self.config.default_quota, self.events, telemetry=self.telemetry
        )
        self.manager = NapletManager(self)
        self.resource_manager = ResourceManager(self)
        self.messenger = Messenger(self)
        self.navigator = Navigator(self)

        hosts_directory = (
            self.config.directory_mode is DirectoryMode.HOME
            or (
                self.config.directory_mode is DirectoryMode.CENTRAL
                and self.config.directory_urn == self.urn
            )
        )
        self.local_directory: NapletDirectory | None = (
            NapletDirectory() if hosts_directory else None
        )
        self.directory_client = DirectoryClient(
            mode=self.config.directory_mode,
            transport=transport,
            self_urn=self.urn,
            central_urn=self.config.directory_urn,
            local_directory=self.local_directory,
        )
        self.locator = Locator(
            self.directory_client,
            self.config.locator_cache_ttl,
            events=self.events,
            telemetry=self.telemetry,
            cache_capacity=self.config.locator_cache_capacity,
        )

        # Every server exposes its own telemetry in-space (open service), so
        # monitoring naplets harvest metrics like the paper's MAN agents
        # harvest SNMP variables.
        self.resource_manager.register_open_service(
            TelemetryService.SERVICE_NAME, TelemetryService(self)
        )
        # ... and its flight-recorder journal, for the causal harvest.
        self.resource_manager.register_open_service(
            JournalService.SERVICE_NAME, JournalService(self)
        )

        # Health plane: samples the monitor's control blocks on a cadence
        # and runs the watchdog.  Dormant (no thread) unless telemetry and
        # health are both enabled.
        from repro.health.plane import HealthPlane

        self.health = HealthPlane(self)
        self.health.start()

        # Load observatory: heartbeat digests over connections the space
        # already holds open, the merged SpaceView the Navigator consults,
        # and the ``load`` open service peers and probes read.
        from repro.health.observatory import LoadObservatory, LoadService

        self.observatory = LoadObservatory(self)
        self.resource_manager.register_open_service(
            LoadService.SERVICE_NAME, LoadService(self)
        )
        self.observatory.start()

        self._shutdown = threading.Event()
        transport.register(self.urn, self._handle_frame)
        # Wire-level connection failures at our endpoint land in our
        # EventLog instead of vanishing inside the transport.
        transport.bind_event_log(self.urn, self.events)
        # A fault-injecting transport journals each fault it fires on our
        # outbound frames, pinning it onto the causal timeline exactly once.
        bind_journal = getattr(transport, "bind_journal", None)
        if callable(bind_journal):
            bind_journal(self.urn, self.journal)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def attach(cls, host: "VirtualHost", config: ServerConfig | None = None) -> "NapletServer":
        """Build a server on a virtual host, wired to its network fixtures."""
        network = host.network
        server = cls(
            hostname=host.hostname,
            transport=network.transport,
            authority=network.authority,
            code_registry=network.code_registry,
            config=config,
            network=network,
        )
        host.install_server(server)
        return server

    # ------------------------------------------------------------------ #
    # Frame dispatch
    # ------------------------------------------------------------------ #

    def _handle_frame(self, frame: Frame) -> bytes | None:
        if self._shutdown.is_set():
            return pickle.dumps({"ok": False, "reason": "server shut down"})
        # Piggybacked HLC stamp: advance our clock before any handler
        # journals, so everything recorded here sorts after the sender's
        # pre-send records in the merged timeline (DESIGN.md §6.5).
        hlc_header = frame.headers.get("hlc")
        if hlc_header is not None:
            self.journal.receive(hlc_header)
        kind = frame.kind
        if kind == FrameKind.LANDING_REQUEST:
            return self.navigator.handle_landing_request(frame)
        if kind == FrameKind.NAPLET_TRANSFER:
            return self.navigator.handle_transfer(frame)
        if kind == FrameKind.MESSAGE:
            return self.messenger.handle_message_frame(frame)
        if kind == FrameKind.CONTROL:
            return self.messenger.handle_control_frame(frame)
        if kind == FrameKind.REPORT:
            return self.messenger.handle_report_frame(frame)
        if kind == FrameKind.DIRECTORY_EVENT:
            if self.local_directory is None:
                raise NapletError(f"{self.urn} hosts no directory")
            return DirectoryClient.handle_event_frame(self.local_directory, frame)
        if kind in (FrameKind.DIRECTORY_QUERY, FrameKind.LOCATE_QUERY):
            if self.local_directory is None:
                raise NapletError(f"{self.urn} hosts no directory")
            return DirectoryClient.handle_query_frame(self.local_directory, frame)
        if kind == FrameKind.PING:
            return pickle.dumps({"pong": self.urn})
        if kind == FrameKind.LOAD:
            return self.observatory.handle_load_frame(frame)
        raise NapletError(f"{self.urn}: unknown frame kind {kind!r}")

    # ------------------------------------------------------------------ #
    # Public facade
    # ------------------------------------------------------------------ #

    def launch(
        self,
        naplet: "Naplet",
        owner: str,
        listener: NapletListener | None = None,
        attributes: dict[str, str] | None = None,
    ) -> NapletID:
        """Launch *naplet* from this (its home) server."""
        return self.manager.launch(naplet, owner, listener, attributes)

    # -- remote control of launched naplets ------------------------------- #

    def terminate_naplet(self, nid: NapletID) -> None:
        self.messenger.send_control(nid, SystemControl.TERMINATE)

    def suspend_naplet(self, nid: NapletID) -> None:
        self.messenger.send_control(nid, SystemControl.SUSPEND)

    def resume_naplet(self, nid: NapletID) -> None:
        self.messenger.send_control(nid, SystemControl.RESUME)

    def callback_naplet(self, nid: NapletID, payload: Any = None) -> None:
        self.messenger.send_control(nid, SystemControl.CALLBACK, payload)

    # -- freeze / thaw (extension: checkpoint-and-revive) ------------------ #

    def freeze_naplet(self, nid: NapletID, timeout: float = 10.0) -> bytes:
        """Checkpoint a resident naplet to bytes and retire it here.

        The naplet unwinds at its next cooperative checkpoint (its
        ``on_stop`` hook runs, ``on_destroy`` does not); the returned image
        can be persisted and later revived with :meth:`thaw_naplet` on any
        server — its ``on_start`` re-runs there, the same per-visit restart
        semantics as ordinary migration.
        """
        import time as _time

        naplet = self.manager.resident(nid)
        if naplet is None:
            raise NapletError(f"{nid} is not resident at {self.hostname}")
        if not self.monitor.interrupt(nid, SystemControl.FREEZE):
            raise NapletError(f"{nid} has no running thread at {self.hostname}")
        deadline = _time.monotonic() + timeout
        while _time.monotonic() < deadline:
            footprint = self.manager.footprint(nid)
            if footprint is not None and footprint.outcome == "frozen":
                break
            _time.sleep(0.005)
        else:
            raise NapletError(f"freeze of {nid} did not complete within {timeout}s")
        if self.journal.enabled:
            # The stamp travels in the image so a later thaw — possibly at
            # a server with a skewed clock — still lands after the freeze.
            naplet._stamp_hlc(self.journal.clock.now())
        image = self.serializer.dumps(naplet)
        self.events.record("naplet-frozen", naplet=str(nid), bytes=len(image))
        return image

    def thaw_naplet(self, image: bytes) -> NapletID:
        """Revive a frozen naplet image at this server."""
        naplet = self.serializer.loads(image, self.code_cache)
        nid = naplet.naplet_id
        if self.manager.is_resident(nid):
            raise NapletError(f"{nid} is already resident at {self.hostname}")
        self.events.record("naplet-thawed", naplet=str(nid), bytes=len(image))
        self.navigator.receive(naplet, arrived_from=None, payload_bytes=len(image))
        return nid

    # -- services ------------------------------------------------------------ #

    def register_open_service(self, name: str, handler: Any) -> None:
        self.resource_manager.register_open_service(name, handler)

    def register_privileged_service(self, name: str, factory: Callable[[], Any]) -> None:
        self.resource_manager.register_privileged_service(name, factory)

    # -- policy helpers -------------------------------------------------------- #

    def quota_for(self, naplet: "Naplet") -> ResourceQuota:
        if self.config.quota_policy is not None:
            quota = self.config.quota_policy(naplet.credential)
            if quota is not None:
                return quota
        return self.config.default_quota

    def _on_code_fetch(self, codebase_name: str, module_key: str, nbytes: int) -> None:
        """Account a lazy codebase fetch as network traffic."""
        self.events.record(
            "codebase-fetch", codebase=codebase_name, module=module_key, bytes=nbytes
        )
        # Lazy shipping moves code on the fetch, not in the hop payload;
        # attribute it to the same histogram part eager bundles use.
        self.telemetry.hop_bytes.observe(nbytes, part="code")
        if self.network is None or self.config.codebase_host is None:
            return
        src = self.config.codebase_host
        delay = self.network.latency.delay(src, self.hostname, nbytes)
        self.network.meter.record(src, self.hostname, FrameKind.CODEBASE_FETCH, nbytes, delay)
        self.network.clock.advance(delay)

    # -- lifecycle ---------------------------------------------------------------- #

    def wait_idle(self, timeout: float = 10.0) -> bool:
        """Wait until no naplet is running here (test/benchmark helper)."""
        return self.monitor.wait_idle(timeout)

    def shutdown(self) -> None:
        if self._shutdown.is_set():
            return
        self._shutdown.set()
        self.health.stop()
        self.observatory.stop()
        for nid in self.monitor.resident_ids():
            self.monitor.interrupt(nid, SystemControl.TERMINATE, "server shutdown")
        self.transport.unregister(self.urn)

    def __repr__(self) -> str:
        return f"<NapletServer {self.hostname!r} residents={self.manager.resident_count}>"
