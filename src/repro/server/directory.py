"""Naplet directory services (paper §4.1).

The naplet space operates in one of three tracing modes:

- ``CENTRAL`` — one server hosts a :class:`NapletDirectory`; Navigators
  register ARRIVAL and DEPART events there.  Naplet execution is postponed
  until the arrival registration is acknowledged, which guarantees the
  directory is never behind: "latest = departure" means in transit,
  "latest = arrival" means running at (or just leaving) that server.
- ``HOME``   — the directory is distributed over NapletManagers: each
  naplet's location is maintained by its *home* manager (the home is encoded
  in the naplet id), and tracing requests are directed there.
- ``NONE``   — no registrations at all; location queries fail and the
  Messenger falls back to trace-based message forwarding.

:class:`DirectoryClient` gives Navigators/Locators a mode-independent API;
event and query frames travel over the ordinary transport.
"""

from __future__ import annotations

import enum
import pickle
import threading
from dataclasses import dataclass

from repro.core.errors import NapletCommunicationError
from repro.core.naplet_id import NapletID
from repro.transport.base import Frame, FrameKind, Transport, urn_of

__all__ = [
    "DirectoryMode",
    "DirectoryEvent",
    "DirectoryRecord",
    "NapletDirectory",
    "DirectoryClient",
]


class DirectoryMode(enum.Enum):
    CENTRAL = "central"
    HOME = "home"
    NONE = "none"


class DirectoryEvent:
    ARRIVAL = "arrival"
    DEPART = "depart"
    # Combined depart-at-source + arrive-at-destination registration: the
    # migration fast path reports both in ONE frame from the destination,
    # halving directory round trips per hop.
    MIGRATION = "migration"


# Hot control replies, serialized once (the ack for every registration).
_ACK = pickle.dumps(True)


@dataclass(frozen=True)
class DirectoryRecord:
    """Latest registration about one naplet."""

    naplet_id: NapletID
    event: str
    server_urn: str
    sequence: int

    @property
    def in_transit(self) -> bool:
        """True when the latest registration is a departure (paper §4.1)."""
        return self.event == DirectoryEvent.DEPART


class NapletDirectory:
    """The registry itself (central mode) or one manager's slice (home mode)."""

    def __init__(self) -> None:
        self._records: dict[NapletID, DirectoryRecord] = {}
        self._lock = threading.RLock()
        self._sequence = 0

    def _register(self, nid: NapletID, event: str, urn: str) -> DirectoryRecord:
        with self._lock:
            self._sequence += 1
            record = DirectoryRecord(
                naplet_id=nid, event=event, server_urn=urn, sequence=self._sequence
            )
            self._records[nid] = record
            return record

    def register_arrival(self, nid: NapletID, urn: str) -> DirectoryRecord:
        return self._register(nid, DirectoryEvent.ARRIVAL, urn)

    def register_departure(self, nid: NapletID, urn: str) -> DirectoryRecord:
        return self._register(nid, DirectoryEvent.DEPART, urn)

    def lookup(self, nid: NapletID) -> DirectoryRecord | None:
        with self._lock:
            return self._records.get(nid)

    def drop(self, nid: NapletID) -> None:
        """Remove a retired naplet's record."""
        with self._lock:
            self._records.pop(nid, None)

    def known_ids(self) -> list[NapletID]:
        with self._lock:
            return list(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


class DirectoryClient:
    """Mode-aware access to the directory from one server.

    ``local_directory`` is this server's own store: the central one if this
    server hosts it, or the home-mode slice for naplets homed here.
    """

    def __init__(
        self,
        mode: DirectoryMode,
        transport: Transport,
        self_urn: str,
        central_urn: str | None = None,
        local_directory: NapletDirectory | None = None,
    ) -> None:
        if mode is DirectoryMode.CENTRAL and central_urn is None:
            raise ValueError("CENTRAL mode needs the directory server's URN")
        self.mode = mode
        self.transport = transport
        self.self_urn = self_urn
        self.central_urn = central_urn
        self.local = local_directory

    # -- where is the authority for this naplet? ---------------------------- #

    def _authority_urn(self, nid: NapletID) -> str | None:
        if self.mode is DirectoryMode.CENTRAL:
            return self.central_urn
        if self.mode is DirectoryMode.HOME:
            return urn_of(nid.home)
        return None

    def _is_local_authority(self, nid: NapletID) -> bool:
        return self._authority_urn(nid) == self.self_urn and self.local is not None

    # -- event registration (synchronous: ack required) ----------------------- #

    def _report(self, nid: NapletID, event: str, at_urn: str) -> None:
        if self.mode is DirectoryMode.NONE:
            return
        if self._is_local_authority(nid):
            assert self.local is not None
            if event == DirectoryEvent.ARRIVAL:
                self.local.register_arrival(nid, at_urn)
            else:
                self.local.register_departure(nid, at_urn)
            return
        authority = self._authority_urn(nid)
        assert authority is not None
        payload = pickle.dumps({"nid": nid, "event": event, "urn": at_urn})
        frame = Frame(
            kind=FrameKind.DIRECTORY_EVENT,
            source=self.self_urn,
            dest=authority,
            payload=payload,
        )
        reply = self.transport.request(frame)
        if pickle.loads(reply) is not True:
            raise NapletCommunicationError(
                f"directory at {authority} did not acknowledge {event} of {nid}"
            )

    def report_arrival(self, nid: NapletID, at_urn: str) -> None:
        """Register an arrival; returns only after the ack (paper §4.1)."""
        self._report(nid, DirectoryEvent.ARRIVAL, at_urn)

    def report_departure(self, nid: NapletID, at_urn: str) -> None:
        self._report(nid, DirectoryEvent.DEPART, at_urn)

    def report_migration(self, nid: NapletID, from_urn: str, to_urn: str) -> None:
        """Register depart(*from_urn*) + arrival(*to_urn*) in one exchange.

        Used by the migration fast path: the destination registers both
        legs of the hop on the source's behalf, so the hop costs at most
        one directory round trip (zero when this server is the authority).
        """
        if self.mode is DirectoryMode.NONE:
            return
        if self._is_local_authority(nid):
            assert self.local is not None
            self.local.register_departure(nid, from_urn)
            self.local.register_arrival(nid, to_urn)
            return
        authority = self._authority_urn(nid)
        assert authority is not None
        payload = pickle.dumps(
            {"nid": nid, "event": DirectoryEvent.MIGRATION, "from": from_urn, "urn": to_urn}
        )
        frame = Frame(
            kind=FrameKind.DIRECTORY_EVENT,
            source=self.self_urn,
            dest=authority,
            payload=payload,
        )
        reply = self.transport.request(frame)
        if pickle.loads(reply) is not True:
            raise NapletCommunicationError(
                f"directory at {authority} did not acknowledge migration of {nid}"
            )

    # -- lookup ------------------------------------------------------------------ #

    def lookup(self, nid: NapletID) -> DirectoryRecord | None:
        """Latest record for *nid*, or None (unknown or mode NONE)."""
        if self.mode is DirectoryMode.NONE:
            return None
        if self._is_local_authority(nid):
            assert self.local is not None
            return self.local.lookup(nid)
        authority = self._authority_urn(nid)
        assert authority is not None
        frame = Frame(
            kind=FrameKind.DIRECTORY_QUERY,
            source=self.self_urn,
            dest=authority,
            payload=pickle.dumps({"nid": nid}),
        )
        try:
            reply = self.transport.request(frame)
        except NapletCommunicationError:
            return None
        record = pickle.loads(reply)
        return record  # DirectoryRecord or None

    # -- frame handling on the authority side --------------------------------- #

    @staticmethod
    def handle_event_frame(directory: NapletDirectory, frame: Frame) -> bytes:
        data = pickle.loads(frame.payload)
        event = data["event"]
        if event == DirectoryEvent.MIGRATION:
            directory.register_departure(data["nid"], data["from"])
            directory.register_arrival(data["nid"], data["urn"])
        elif event == DirectoryEvent.ARRIVAL:
            directory.register_arrival(data["nid"], data["urn"])
        else:
            directory.register_departure(data["nid"], data["urn"])
        return _ACK

    @staticmethod
    def handle_query_frame(directory: NapletDirectory, frame: Frame) -> bytes:
        data = pickle.loads(frame.payload)
        return pickle.dumps(directory.lookup(data["nid"]))
