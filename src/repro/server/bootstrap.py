"""Deployment helpers: bring a naplet space up on a virtual network.

Every example, test and benchmark starts the same way — build a topology,
attach one NapletServer per (selected) host, pick a directory mode.  This
module packages that so experiment code stays about the experiment.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable

from repro.server.directory import DirectoryMode
from repro.server.server import NapletServer, ServerConfig
from repro.simnet.network import VirtualNetwork
from repro.transport.base import urn_of

__all__ = ["deploy"]


def deploy(
    network: VirtualNetwork,
    hostnames: Iterable[str] | None = None,
    config: ServerConfig | None = None,
    directory_host: str | None = None,
) -> dict[str, NapletServer]:
    """Attach a NapletServer to each host; returns servers by hostname.

    ``directory_host`` switches the space to CENTRAL mode with the directory
    on that host; otherwise the config's mode (default HOME) applies
    uniformly.  Each server gets its own config copy so later per-server
    tweaks don't alias.
    """
    base = config or ServerConfig()
    names = list(hostnames) if hostnames is not None else network.hostnames()
    if directory_host is not None:
        base = dataclasses.replace(
            base,
            directory_mode=DirectoryMode.CENTRAL,
            directory_urn=urn_of(directory_host),
        )
        if directory_host not in names:
            names.append(directory_host)
    servers: dict[str, NapletServer] = {}
    for name in names:
        per_server = dataclasses.replace(base)
        servers[name] = NapletServer.attach(network.host(name), per_server)
    return servers
