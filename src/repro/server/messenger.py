"""Messenger: post-office messaging service (paper §2.2, §4.2).

Implements the three-case post-office protocol verbatim:

1. target resident here → insert into its mailbox, reply *delivered*; the
   confirmation is kept by the sending Messenger for later inquiry;
2. target already left → consult the NapletManager's trace and forward the
   message to the server it departed for; forwarding repeats until the
   message catches up (*forwarded*, with hop count);
3. target not arrived yet (naplet temporarily blocked in the network) →
   park the message in the **special mailbox**; when the naplet lands, its
   fresh mailbox is seeded from the parked messages (*parked*).

System messages ride the same chase logic but are delivered as monitor
interrupts instead of mailbox entries.  Message bodies are serialized with
the server's NapletSerializer so they may carry shipped-class instances.
"""

from __future__ import annotations

import pickle
import threading
from typing import TYPE_CHECKING, Any, Callable

from repro.core.errors import (
    NapletCommunicationError,
    NapletLocationError,
)
from repro.core.naplet_id import NapletID
from repro.faults.deadletter import DeadLetter, DeadLetterQueue
from repro.server.mailbox import Mailbox
from repro.server.messages import (
    DeliveryReceipt,
    SystemMessage,
    UserMessage,
    join_token_of,
    make_join_body,
)
from repro.server.security import Permission
from repro.telemetry.trace import NULL_SPAN, TraceContext
from repro.transport.base import Frame, FrameKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.naplet import Naplet
    from repro.server.server import NapletServer

__all__ = ["Messenger", "NapletMessengerProxy"]

_MAX_HOPS = 16


class Messenger:
    """Per-server post office."""

    def __init__(self, server: "NapletServer") -> None:
        self.server = server
        self._mailboxes: dict[NapletID, Mailbox] = {}
        self._special: dict[NapletID, list[UserMessage | SystemMessage]] = {}
        self._receipts: dict[int, DeliveryReceipt] = {}
        self._lock = threading.RLock()
        self.parked_count = 0
        self.forwarded_count = 0
        # Messages that exhausted their delivery budget wait here for a
        # requeue once the network heals, instead of vanishing.
        self.dead_letters = DeadLetterQueue(server.config.dead_letter_capacity)
        # Health-plane hook: called with each freshly dead-lettered message
        # so backlog growth is detected the moment it starts.
        self.on_dead_letter: Callable[[DeadLetter], None] | None = None
        # Queue depths are sampled lazily at snapshot time, not on every put.
        registry = server.telemetry.registry
        registry.gauge_fn(
            "naplet_dead_letter_depth",
            "Undeliverable messages waiting in the dead-letter queue",
            lambda: float(len(self.dead_letters)),
        )
        registry.gauge_fn(
            "naplet_mailbox_queue_depth",
            "Messages waiting across resident mailboxes",
            lambda: float(self.mailbox_queue_depth()),
        )
        registry.gauge_fn(
            "naplet_special_mailbox_depth",
            "Messages parked for naplets not (yet) resident here",
            lambda: float(self.special_mailbox_size()),
        )

    def _wire_headers(self, **headers: str) -> dict[str, str]:
        """Frame headers with the flight recorder's HLC stamp piggybacked."""
        stamp = self.server.journal.header_stamp()
        if stamp is not None:
            headers["hlc"] = stamp
        return headers

    # ------------------------------------------------------------------ #
    # Mailbox lifecycle (driven by Navigator arrivals/departures)
    # ------------------------------------------------------------------ #

    def create_mailbox(self, nid: NapletID) -> Mailbox:
        """Create the mailbox on arrival and seed it from the special mailbox."""
        with self._lock:
            mailbox = self._mailboxes.get(nid)
            if mailbox is None:
                mailbox = Mailbox()
                self._mailboxes[nid] = mailbox
            parked = self._special.pop(nid, [])
        if parked:
            self.server.telemetry.special_mailbox_hits.inc(len(parked))
        for message in parked:
            if isinstance(message, SystemMessage):
                self.server.monitor.interrupt(nid, message.control, message.payload)
            else:
                mailbox.put(message)
        return mailbox

    def remove_mailbox(self, nid: NapletID, forward_to: str | None = None) -> None:
        """Drop the mailbox; leftover messages chase the naplet if possible."""
        with self._lock:
            mailbox = self._mailboxes.pop(nid, None)
        if mailbox is None:
            return
        leftovers = mailbox.drain()
        mailbox.close()
        if forward_to is None:
            return
        for message in leftovers:
            try:
                self._send_user_message(message.hopped(), forward_to)
            except NapletCommunicationError:
                continue

    def mailbox_of(self, nid: NapletID) -> Mailbox | None:
        with self._lock:
            return self._mailboxes.get(nid)

    def forward_parked(self, nid: NapletID, dest_urn: str) -> None:
        """Send parked special-mailbox messages after a departing naplet.

        Covers messages that arrived for a naplet *before it ever landed
        here* (e.g. addressed to a clone at its fork server before the
        spawn): once the naplet's transfer toward *dest_urn* succeeds, the
        parked messages chase it there instead of waiting forever.
        """
        with self._lock:
            parked = self._special.pop(nid, [])
        for message in parked:
            kind = FrameKind.CONTROL if isinstance(message, SystemMessage) else FrameKind.MESSAGE
            forwarded = message.hopped() if isinstance(message, UserMessage) else message
            frame = Frame(
                kind=kind,
                source=self.server.urn,
                dest=dest_urn,
                payload=self.server.serializer.dumps(forwarded),
                headers=self._wire_headers(target=str(nid)),
            )
            try:
                self.server.transport.request(frame)
            except NapletCommunicationError as exc:
                self._dead_letter(forwarded, dest_urn, str(exc))
                continue

    # ------------------------------------------------------------------ #
    # Dead-letter queue
    # ------------------------------------------------------------------ #

    def _dead_letter(
        self,
        message: UserMessage | SystemMessage,
        dest_urn: str,
        reason: str,
        attempts: int = 1,
    ) -> None:
        letter = DeadLetter(
            message=message,
            dest_urn=dest_urn,
            reason=reason,
            attempts=attempts,
            source=self.server.urn,
        )
        self.dead_letters.put(letter)
        if self.on_dead_letter is not None:
            try:
                self.on_dead_letter(letter)
            except Exception:
                pass  # an observer must never break delivery error handling
        self.server.telemetry.dead_letters.inc()
        self.server.events.record(
            "message-dead-lettered",
            target=str(message.target),
            dest=dest_urn,
            reason=reason,
        )

    def requeue_dead_letters(self) -> tuple[int, int]:
        """Retry every dead letter now that the network (maybe) healed.

        Each letter is re-resolved through the locator — the target may
        have moved while the link was down — and sent once; letters that
        fail again go back on the queue.  Returns ``(delivered,
        requeued)``.
        """

        def _deliver(letter: DeadLetter) -> None:
            message = letter.message
            try:
                destination = self._resolve_destination(None, message.target, None)
            except NapletLocationError:
                destination = letter.dest_urn
            if isinstance(message, SystemMessage):
                self._send_control_once(message, destination)
            else:
                self._send_user_message_once(message, destination)

        delivered, requeued = self.dead_letters.redeliver(_deliver)
        if delivered:
            self.server.telemetry.dead_letters_requeued.inc(delivered)
        if delivered or requeued:
            self.server.events.record(
                "dead-letters-requeued", delivered=delivered, requeued=requeued
            )
        return delivered, requeued

    # ------------------------------------------------------------------ #
    # Sending
    # ------------------------------------------------------------------ #

    def _resolve_destination(
        self, naplet: "Naplet | None", target: NapletID, explicit_urn: str | None
    ) -> str:
        if explicit_urn is not None:
            return explicit_urn
        located = self.server.locator.locate(target)
        if located is not None:
            return located
        if naplet is not None:
            entry = naplet.address_book.lookup(target)
            if entry is not None:
                return entry.server_urn
        raise NapletLocationError(f"cannot locate naplet {target} from {self.server.urn}")

    def _send_user_message(self, message: UserMessage, dest_urn: str) -> DeliveryReceipt:
        """Send under ``config.message_retry``; dead-letter when it gives up.

        Retries happen only here, at the origin — the forwarding path in
        :meth:`_deliver_local` never retries, so a chase across N servers
        cannot amplify into N retry storms.
        """
        policy = self.server.config.message_retry

        def _on_retry(attempt: int, wait: float, exc: BaseException) -> None:
            self.server.telemetry.message_retries.inc()
            self.server.events.record(
                "message-retry",
                target=str(message.target),
                dest=dest_urn,
                attempt=attempt,
                error=str(exc),
            )

        try:
            return policy.run(
                lambda: self._send_user_message_once(message, dest_urn),
                retry_on=(NapletCommunicationError,),
                on_retry=_on_retry,
            )
        except NapletCommunicationError as exc:
            self._dead_letter(message, dest_urn, str(exc), attempts=policy.max_attempts)
            raise

    def _send_user_message_once(
        self, message: UserMessage, dest_urn: str
    ) -> DeliveryReceipt:
        payload = self.server.serializer.dumps(message)
        self.server.telemetry.frame_bytes.inc(len(payload), kind="message")
        frame = Frame(
            kind=FrameKind.MESSAGE,
            source=self.server.urn,
            dest=dest_urn,
            payload=payload,
            headers=self._wire_headers(target=str(message.target)),
        )
        reply = self.server.transport.request(frame)
        result = pickle.loads(reply)
        receipt = DeliveryReceipt(
            message_id=message.message_id,
            target=message.target,
            status=result["status"],
            final_server=result["server"],
            hops=result["hops"],
        )
        if receipt.status == "undeliverable":
            raise NapletCommunicationError(
                f"message {message.message_id} to {message.target} undeliverable "
                f"after {receipt.hops} hops"
            )
        with self._lock:
            self._receipts[receipt.message_id] = receipt
        # A delivery confirms a current location — update the cache.
        if receipt.status in ("delivered", "forwarded"):
            self.server.locator.note_location(message.target, receipt.final_server)
        return receipt

    def post(
        self,
        sender: "Naplet | None",
        target: NapletID,
        body: Any,
        dest_urn: str | None = None,
    ) -> DeliveryReceipt:
        """Post a user message toward *target* (sender may be the server itself)."""
        if sender is not None:
            self.server.security.check(sender.credential, Permission.MESSAGE)
        message = UserMessage(
            sender=sender.naplet_id if sender is not None else self.server.urn,
            target=target,
            body=body,
        )
        telemetry = self.server.telemetry
        send_span = (
            telemetry.naplet_span(sender, "message-send", target=str(target))
            if sender is not None
            else NULL_SPAN
        )
        with send_span:
            ctx = sender.trace_context if sender is not None else None
            lookup_span = (
                telemetry.span(
                    "locator-lookup", ctx, parent_id=send_span.span_id, target=str(target)
                )
                if ctx is not None
                else NULL_SPAN
            )
            with lookup_span:
                destination = self._resolve_destination(sender, target, dest_urn)
                lookup_span.set("resolved", destination)
            if ctx is not None and send_span.span_id:
                # The envelope carries the trace so forwarding servers can
                # hang their forward spans under this message-send span.
                message.trace_id = ctx.trace_id
                message.trace_parent = send_span.span_id
            receipt = self._send_user_message(message, destination)
            send_span.set("status", receipt.status)
            send_span.set("hops", receipt.hops)
        if sender is not None:
            block = self.server.monitor.control_block(sender.naplet_id)
            if block is not None:
                block.account_message(len(self.server.serializer.dumps(body)))
        return receipt

    def send_control(
        self,
        target: NapletID,
        control: str,
        payload: Any = None,
        dest_urn: str | None = None,
    ) -> DeliveryReceipt:
        """Send a system message (terminate/suspend/resume/callback/...)."""
        message = SystemMessage(control=control, target=target, payload=payload)
        destination = self._resolve_destination(None, target, dest_urn)
        policy = self.server.config.message_retry

        def _on_retry(attempt: int, wait: float, exc: BaseException) -> None:
            self.server.telemetry.message_retries.inc()
            self.server.events.record(
                "control-retry",
                target=str(target),
                control=control,
                attempt=attempt,
                error=str(exc),
            )

        try:
            return policy.run(
                lambda: self._send_control_once(message, destination),
                retry_on=(NapletCommunicationError,),
                on_retry=_on_retry,
            )
        except NapletCommunicationError as exc:
            self._dead_letter(message, destination, str(exc), attempts=policy.max_attempts)
            raise

    def _send_control_once(
        self, message: SystemMessage, destination: str
    ) -> DeliveryReceipt:
        target = message.target
        control = message.control
        frame = Frame(
            kind=FrameKind.CONTROL,
            source=self.server.urn,
            dest=destination,
            payload=self.server.serializer.dumps(message),
            headers=self._wire_headers(target=str(target), control=control),
        )
        reply = self.server.transport.request(frame)
        result = pickle.loads(reply)
        receipt = DeliveryReceipt(
            message_id=message.message_id,
            target=target,
            status=result["status"],
            final_server=result["server"],
            hops=result["hops"],
        )
        if receipt.status == "undeliverable":
            raise NapletCommunicationError(
                f"control {control!r} for {target} undeliverable"
            )
        return receipt

    def receipt_for(self, message_id: int) -> DeliveryReceipt | None:
        """The kept confirmation 'for further possible inquiry' (paper §4.2)."""
        with self._lock:
            return self._receipts.get(message_id)

    # ------------------------------------------------------------------ #
    # Receiving (frame handlers; run on delivering threads)
    # ------------------------------------------------------------------ #

    def handle_message_frame(self, frame: Frame) -> bytes:
        message: UserMessage = self.server.serializer.loads(
            frame.payload, self.server.code_cache
        )
        return pickle.dumps(self._deliver_local(message, is_control=False))

    def handle_control_frame(self, frame: Frame) -> bytes:
        message: SystemMessage = self.server.serializer.loads(
            frame.payload, self.server.code_cache
        )
        return pickle.dumps(self._deliver_local(message, is_control=True))

    def _deliver_local(
        self, message: UserMessage | SystemMessage, is_control: bool
    ) -> dict[str, Any]:
        target = message.target
        hops = getattr(message, "hops", 0)
        telemetry = self.server.telemetry
        # Case 1: resident here.
        if self.server.manager.is_resident(target):
            if is_control:
                assert isinstance(message, SystemMessage)
                self.server.monitor.interrupt(target, message.control, message.payload)
            else:
                assert isinstance(message, UserMessage)
                mailbox = self.mailbox_of(target)
                if mailbox is None:
                    mailbox = self.create_mailbox(target)
                mailbox.put(message)
            telemetry.messages_delivered.inc()
            return {"status": "delivered", "server": self.server.urn, "hops": hops}
        # Case 2: it left — forward along the trace.
        next_hop = self.server.manager.trace_next_hop(target)
        if next_hop is not None:
            if hops >= _MAX_HOPS:
                return {"status": "undeliverable", "server": self.server.urn, "hops": hops}
            forwarded = message.hopped() if isinstance(message, UserMessage) else message
            kind = FrameKind.CONTROL if is_control else FrameKind.MESSAGE
            frame = Frame(
                kind=kind,
                source=self.server.urn,
                dest=next_hop,
                payload=self.server.serializer.dumps(forwarded),
                headers=self._wire_headers(target=str(target), hops=str(hops + 1)),
            )
            self.forwarded_count += 1
            telemetry.messages_forwarded.inc()
            trace_id = getattr(message, "trace_id", None)
            trace_parent = getattr(message, "trace_parent", None)
            forward_span = (
                telemetry.span(
                    "message-forward",
                    TraceContext(trace_id=trace_id, span_id=trace_parent or ""),
                    parent_id=trace_parent,
                    target=str(target),
                    next_hop=next_hop,
                    hops=hops + 1,
                )
                if trace_id
                else NULL_SPAN
            )
            with forward_span:
                try:
                    reply = self.server.transport.request(frame)
                except NapletCommunicationError:
                    forward_span.set("undeliverable", True)
                    return {"status": "undeliverable", "server": self.server.urn, "hops": hops}
            result = pickle.loads(reply)
            if is_control:
                return result
            result["hops"] = max(result["hops"], hops + 1)
            return result
        # Case 3: never seen here — park in the special mailbox.
        with self._lock:
            self._special.setdefault(target, []).append(message)
            self.parked_count += 1
        telemetry.messages_parked.inc()
        # The naplet may have landed between the residency check above and
        # the park — after the landing's own special-mailbox drain ran.
        # Re-check and hand over now, or the message is stranded until the
        # naplet departs (and a clone that retires here never departs).
        if self.server.manager.is_resident(target):
            self.create_mailbox(target)
            telemetry.messages_delivered.inc()
            return {"status": "delivered", "server": self.server.urn, "hops": hops}
        return {"status": "parked", "server": self.server.urn, "hops": hops}

    def handle_report_frame(self, frame: Frame) -> bytes:
        data = self.server.serializer.loads(frame.payload, self.server.code_cache)
        delivered = self.server.manager.deliver_report(
            data["listener_key"], data["reporter"], data["payload"]
        )
        return pickle.dumps(delivered)

    def post_report(self, home_urn: str, listener_key: str, reporter: Any, payload: Any) -> None:
        frame = Frame(
            kind=FrameKind.REPORT,
            source=self.server.urn,
            dest=home_urn,
            payload=self.server.serializer.dumps(
                {"listener_key": listener_key, "reporter": reporter, "payload": payload}
            ),
            headers=self._wire_headers(),
        )
        reply = self.server.transport.request(frame)
        if pickle.loads(reply) is not True:
            raise NapletCommunicationError(
                f"home {home_urn} has no listener {listener_key!r}"
            )

    def special_mailbox_size(self, nid: NapletID | None = None) -> int:
        with self._lock:
            if nid is not None:
                return len(self._special.get(nid, []))
            return sum(len(v) for v in self._special.values())

    def mailbox_queue_depth(self) -> int:
        """Messages waiting across all resident mailboxes (gauge callback)."""
        with self._lock:
            mailboxes = list(self._mailboxes.values())
        return sum(len(mb) for mb in mailboxes)


class NapletMessengerProxy:
    """Messenger facade scoped to one resident naplet (the context's view)."""

    def __init__(self, messenger: Messenger, naplet: "Naplet") -> None:
        self._messenger = messenger
        self._naplet = naplet

    def post_message(
        self, server_urn: str | None, target: NapletID, body: Any
    ) -> DeliveryReceipt:
        return self._messenger.post(self._naplet, target, body, dest_urn=server_urn)

    def _mailbox(self) -> Mailbox:
        mailbox = self._messenger.mailbox_of(self._naplet.naplet_id)
        if mailbox is None:
            raise NapletCommunicationError(
                f"naplet {self._naplet.naplet_id} has no mailbox here"
            )
        return mailbox

    def get_message(self, timeout: float | None = 30.0) -> UserMessage:
        self._naplet.checkpoint()
        return self._mailbox().get(timeout)

    def get_matching(
        self, predicate: Callable[[UserMessage], bool], timeout: float | None = 30.0
    ) -> UserMessage:
        self._naplet.checkpoint()
        return self._mailbox().get_matching(predicate, timeout)

    def poll_message(self) -> UserMessage | None:
        return self._mailbox().poll()

    def post_report(self, home_urn: str, listener_key: str, payload: Any) -> None:
        self._messenger.post_report(
            home_urn, listener_key, self._naplet.naplet_id, payload
        )

    def inquire(self, message_id: int) -> DeliveryReceipt | None:
        """The paper §4.2: the confirmation is kept by the sending
        Messenger 'only for further possible inquiry from naplet A'."""
        return self._messenger.receipt_for(message_id)

    def post_join_notice(self, target: NapletID, token: str) -> DeliveryReceipt:
        return self._messenger.post(self._naplet, target, make_join_body(token))

    def await_join_tokens(self, tokens: set[str], timeout: float | None) -> None:
        remaining = set(tokens)
        while remaining:
            message = self.get_matching(
                lambda m: join_token_of(m.body) in remaining, timeout
            )
            token = join_token_of(message.body)
            assert token is not None
            remaining.discard(token)
