"""ResourceManager (paper §2.2, §5.3).

Separates resource *mechanism* from *policy*: the mechanism here is service
registration and allocation; which naplets may use what is decided by the
security policy at allocation time.

Two protection modes for server-side services:

- **open (non-privileged)** services — e.g. math library routines — are
  registered under a name and called directly via their handler;
- **privileged** services — e.g. workload probes, SNMP/MIB access — are
  reachable only through :class:`~repro.server.service_channel.ServiceChannel`
  pipes that the ResourceManager creates on request: one endpoint pair goes
  to the requesting naplet, the other to a fresh service instance running on
  its own thread.  Naplet-specific access control happens here, based on
  the naplet credential (``channel:<name>`` permissions).

Channels are host resources: they are tracked per naplet and closed when
the naplet departs or retires.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Callable

from repro.core.errors import ServiceNotFoundError
from repro.core.naplet_id import NapletID
from repro.server.security import Permission
from repro.server.service_channel import PrivilegedService, ServiceChannel

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.naplet import Naplet
    from repro.server.server import NapletServer

__all__ = ["ResourceManager"]

ServiceFactory = Callable[[], PrivilegedService]


class ResourceManager:
    """Service registry + channel allocator for one server."""

    def __init__(self, server: "NapletServer") -> None:
        self.server = server
        self._open_services: dict[str, Any] = {}
        self._privileged: dict[str, ServiceFactory] = {}
        self._channels: dict[NapletID, dict[str, ServiceChannel]] = {}
        self._lock = threading.RLock()
        self.channels_created = 0

    # ------------------------------------------------------------------ #
    # Configuration (dynamic, per the paper: services can be installed
    # and re-configured at runtime)
    # ------------------------------------------------------------------ #

    def register_open_service(self, name: str, handler: Any) -> None:
        with self._lock:
            self._open_services[name] = handler

    def register_privileged_service(self, name: str, factory: ServiceFactory) -> None:
        with self._lock:
            self._privileged[name] = factory

    def unregister_service(self, name: str) -> None:
        with self._lock:
            self._open_services.pop(name, None)
            self._privileged.pop(name, None)

    def open_service_names(self) -> list[str]:
        with self._lock:
            return sorted(self._open_services)

    def privileged_service_names(self) -> list[str]:
        with self._lock:
            return sorted(self._privileged)

    # ------------------------------------------------------------------ #
    # Allocation (policy-checked)
    # ------------------------------------------------------------------ #

    def open_service(self, naplet: "Naplet", name: str) -> Any:
        """Handler of open service *name* for *naplet* (policy-checked)."""
        with self._lock:
            handler = self._open_services.get(name)
        if handler is None:
            raise ServiceNotFoundError(f"no open service {name!r} on {self.server.hostname}")
        who = str(naplet.naplet_id) if naplet.has_id else naplet.name
        try:
            self.server.security.check(naplet.credential, Permission.service(name))
        except Exception as exc:
            self.server.events.record(
                "service-denied", naplet=who, service=name, reason=str(exc)
            )
            raise
        self.server.events.record("service-granted", naplet=who, service=name)
        return handler

    def request_channel(self, naplet: "Naplet", name: str) -> ServiceChannel:
        """Create a channel between *naplet* and privileged service *name*.

        The naplet keeps the naplet-side endpoints; the service instance is
        started on its own daemon thread with the service-side endpoints.
        """
        with self._lock:
            factory = self._privileged.get(name)
        if factory is None:
            raise ServiceNotFoundError(
                f"no privileged service {name!r} on {self.server.hostname}"
            )
        who = str(naplet.naplet_id) if naplet.has_id else naplet.name
        try:
            self.server.security.check(naplet.credential, Permission.channel(name))
        except Exception as exc:
            self.server.events.record(
                "channel-denied", naplet=who, service=name, reason=str(exc)
            )
            raise
        channel = ServiceChannel(service_name=name)
        service = factory()
        service.bind(channel.service_reader, channel.service_writer)
        service.start(name=f"service-{name}@{self.server.hostname}")
        nid = naplet.naplet_id
        with self._lock:
            self._channels.setdefault(nid, {})[name] = channel
            self.channels_created += 1
        self.server.events.record(
            "channel-created", naplet=str(nid), service=name
        )
        return channel

    def channels_of(self, nid: NapletID) -> dict[str, ServiceChannel]:
        with self._lock:
            return dict(self._channels.get(nid, {}))

    # ------------------------------------------------------------------ #
    # Release on departure/retirement
    # ------------------------------------------------------------------ #

    def release(self, nid: NapletID) -> None:
        """Close and drop every channel held by *nid*."""
        with self._lock:
            channels = self._channels.pop(nid, {})
        for channel in channels.values():
            channel.close()

    @property
    def active_channel_count(self) -> int:
        with self._lock:
            return sum(len(c) for c in self._channels.values())

    def proxy_for(self, naplet: "Naplet") -> "NapletServiceProxy":
        return NapletServiceProxy(self, naplet)


class NapletServiceProxy:
    """Context-facing service facade scoped to one resident naplet."""

    def __init__(self, manager: ResourceManager, naplet: "Naplet") -> None:
        self._manager = manager
        self._naplet = naplet

    def open_service(self, name: str) -> Any:
        return self._manager.open_service(self._naplet, name)

    def request_service_channel(self, name: str) -> ServiceChannel:
        return self._manager.request_channel(self._naplet, name)

    def service_channel_list(self) -> dict[str, ServiceChannel]:
        return self._manager.channels_of(self._naplet.naplet_id)
