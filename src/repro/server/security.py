"""Security: policies and the NapletSecurityManager (paper §5).

A :class:`SecurityPolicy` is the paper's access-control matrix: it "maps a
set of characteristic features of naplets to a set of access permissions
granted to the naplets".  Features come from the naplet's credential (owner,
home, codebase, plus application attributes); permissions are namespaced
strings:

- ``launch``            — leave this server for another;
- ``landing``           — be admitted by this server;
- ``message``           — use the messenger;
- ``clone``             — fork clones here;
- ``service:<name>``    — call the open service *<name>*;
- ``channel:<name>``    — obtain a ServiceChannel to privileged *<name>*.

Rules match features with ``fnmatch`` wildcards, so an administrator writes
``Rule({"owner": "czxu"}, grants={"landing", "channel:NetManagement"})`` or
a catch-all ``Rule({}, grants={"landing", "launch"})``.  Deny-rules
(``denies=...``) subtract after all grants union — a conventional
default-permit/explicit-deny matrix.

The :class:`NapletSecurityManager` verifies credential signatures against
the network's signing authority before consulting the policy.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from fnmatch import fnmatch

from repro.core.credential import Credential, SigningAuthority
from repro.core.errors import CredentialError, PermissionDeniedError

__all__ = ["Permission", "Rule", "SecurityPolicy", "NapletSecurityManager"]


class Permission:
    """Well-known permission names."""

    LAUNCH = "launch"
    LANDING = "landing"
    MESSAGE = "message"
    CLONE = "clone"

    @staticmethod
    def service(name: str) -> str:
        return f"service:{name}"

    @staticmethod
    def channel(name: str) -> str:
        return f"channel:{name}"


@dataclass(frozen=True)
class Rule:
    """One row of the access-control matrix.

    ``match`` maps feature names to fnmatch patterns; a rule applies when
    every pattern matches the credential's feature (a missing feature never
    matches).  An empty match applies to every naplet.
    """

    match: tuple[tuple[str, str], ...]
    grants: frozenset[str] = frozenset()
    denies: frozenset[str] = frozenset()

    @classmethod
    def of(
        cls,
        match: dict[str, str] | None = None,
        grants: set[str] | frozenset[str] = frozenset(),
        denies: set[str] | frozenset[str] = frozenset(),
    ) -> "Rule":
        return cls(
            match=tuple(sorted((match or {}).items())),
            grants=frozenset(grants),
            denies=frozenset(denies),
        )

    def applies_to(self, features: dict[str, str]) -> bool:
        for key, pattern in self.match:
            value = features.get(key)
            if value is None or not fnmatch(value, pattern):
                return False
        return True


class SecurityPolicy:
    """Ordered rule list; grants union, denies subtract afterwards."""

    def __init__(self, rules: list[Rule] | None = None) -> None:
        self._rules: list[Rule] = list(rules or [])
        self._lock = threading.RLock()

    @classmethod
    def permissive(cls) -> "SecurityPolicy":
        """Grant everything to everyone — the out-of-the-box research posture."""
        return cls([Rule.of({}, grants={"*"})])

    @classmethod
    def locked_down(cls) -> "SecurityPolicy":
        """Grant nothing; administrators add rules explicitly."""
        return cls([])

    def add_rule(self, rule: Rule) -> None:
        with self._lock:
            self._rules.append(rule)

    def rules(self) -> list[Rule]:
        with self._lock:
            return list(self._rules)

    def permissions_for(self, credential: Credential) -> tuple[frozenset[str], frozenset[str]]:
        """(grants, denies) applicable to *credential*'s features."""
        features = credential.features()
        grants: set[str] = set()
        denies: set[str] = set()
        with self._lock:
            for rule in self._rules:
                if rule.applies_to(features):
                    grants |= rule.grants
                    denies |= rule.denies
        return frozenset(grants), frozenset(denies)

    def permits(self, credential: Credential, permission: str) -> bool:
        grants, denies = self.permissions_for(credential)
        if _permission_in(permission, denies):
            return False
        return _permission_in(permission, grants)


def _permission_in(permission: str, granted: frozenset[str]) -> bool:
    """Wildcard-aware permission membership: '*' and 'channel:*' style."""
    if permission in granted:
        return True
    for pattern in granted:
        if fnmatch(permission, pattern):
            return True
    return False


class NapletSecurityManager:
    """Per-server security decisions: signatures first, then the matrix."""

    def __init__(
        self,
        policy: SecurityPolicy,
        authority: SigningAuthority | None = None,
        require_signature: bool = True,
    ) -> None:
        self.policy = policy
        self.authority = authority
        self.require_signature = require_signature and authority is not None

    def verify_credential(self, credential: Credential) -> None:
        if not self.require_signature:
            return
        assert self.authority is not None
        if not self.authority.verify(credential):
            raise CredentialError(
                f"credential signature check failed for {credential.naplet_id}"
            )

    def check(self, credential: Credential, permission: str) -> None:
        """Raise unless *permission* is granted to *credential*."""
        self.verify_credential(credential)
        if not self.policy.permits(credential, permission):
            raise PermissionDeniedError(
                f"{credential.naplet_id} lacks permission {permission!r}"
            )

    def permits(self, credential: Credential, permission: str) -> bool:
        try:
            self.check(credential, permission)
        except (PermissionDeniedError, CredentialError):
            return False
        return True
