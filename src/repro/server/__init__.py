"""NapletServer architecture (paper §2.2): the seven components plus wiring."""

from repro.server.admin import NapletStatus, ServerSummary, SpaceAdmin
from repro.server.bootstrap import deploy
from repro.server.directory import (
    DirectoryClient,
    DirectoryEvent,
    DirectoryMode,
    DirectoryRecord,
    NapletDirectory,
)
from repro.server.locator import Locator
from repro.server.mailbox import Mailbox
from repro.server.manager import Footprint, NapletManager, ResidentRecord
from repro.server.messages import (
    DeliveryReceipt,
    SystemControl,
    SystemMessage,
    UserMessage,
)
from repro.server.messenger import Messenger, NapletMessengerProxy
from repro.server.monitor import (
    NapletMonitor,
    NapletOutcome,
    ResourceQuota,
    ResourceUsage,
)
from repro.server.navigator import Navigator, NavigatorOps
from repro.server.resource_manager import NapletServiceProxy, ResourceManager
from repro.server.security import (
    NapletSecurityManager,
    Permission,
    Rule,
    SecurityPolicy,
)
from repro.server.server import NapletServer, ServerConfig
from repro.server.service_channel import (
    EOF,
    NapletReader,
    NapletWriter,
    PrivilegedService,
    ServiceChannel,
    ServiceReader,
    ServiceWriter,
)

__all__ = [
    "NapletServer",
    "ServerConfig",
    "deploy",
    "SpaceAdmin",
    "NapletStatus",
    "ServerSummary",
    "NapletManager",
    "ResidentRecord",
    "Footprint",
    "Navigator",
    "NavigatorOps",
    "NapletMonitor",
    "NapletOutcome",
    "ResourceQuota",
    "ResourceUsage",
    "Messenger",
    "NapletMessengerProxy",
    "Mailbox",
    "UserMessage",
    "SystemMessage",
    "SystemControl",
    "DeliveryReceipt",
    "Locator",
    "NapletDirectory",
    "DirectoryClient",
    "DirectoryMode",
    "DirectoryEvent",
    "DirectoryRecord",
    "ResourceManager",
    "NapletServiceProxy",
    "ServiceChannel",
    "PrivilegedService",
    "EOF",
    "NapletReader",
    "NapletWriter",
    "ServiceReader",
    "ServiceWriter",
    "NapletSecurityManager",
    "SecurityPolicy",
    "Permission",
    "Rule",
]
