"""Message types (paper §2.2, §4.2).

Two message classes exist on the naplet wire:

- **System messages** control naplets (callback, terminate, suspend,
  resume): the receiving Messenger casts an interrupt onto the running
  naplet thread, and the naplet's ``on_interrupt`` defines the reaction.
- **User messages** carry data between naplets: the receiving Messenger
  puts them in the target's mailbox, and the naplet decides when to check.

Join notices (Par itinerary synchronisation) ride as user messages with a
reserved body shape so the itinerary driver can filter for them without a
separate channel.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.core.naplet_id import NapletID

__all__ = [
    "SystemControl",
    "UserMessage",
    "SystemMessage",
    "DeliveryReceipt",
    "make_join_body",
    "join_token_of",
]

_seq = itertools.count(1)
_seq_lock = threading.Lock()


def _next_seq() -> int:
    with _seq_lock:
        return next(_seq)


class SystemControl:
    """Well-known system-message controls."""

    CALLBACK = "callback"
    TERMINATE = "terminate"
    SUSPEND = "suspend"
    RESUME = "resume"
    INTERRUPT = "interrupt"
    FREEZE = "freeze"  # checkpoint-and-retire (extension; see admin/freeze)

    ALL = (CALLBACK, TERMINATE, SUSPEND, RESUME, INTERRUPT, FREEZE)


@dataclass
class UserMessage:
    """Data message between naplets.

    ``trace_id``/``trace_parent`` carry the sender's journey trace across
    forwarding hops, so every intermediate Messenger can record its
    forward step as a span under the sender's ``message-send`` span.
    """

    sender: NapletID | str
    target: NapletID
    body: Any
    message_id: int = field(default_factory=_next_seq)
    sent_at: float = field(default_factory=time.time)
    hops: int = 0
    trace_id: str | None = None
    trace_parent: str | None = None

    def hopped(self) -> "UserMessage":
        """Copy with the forwarding hop count incremented."""
        return UserMessage(
            sender=self.sender,
            target=self.target,
            body=self.body,
            message_id=self.message_id,
            sent_at=self.sent_at,
            hops=self.hops + 1,
            trace_id=self.trace_id,
            trace_parent=self.trace_parent,
        )


@dataclass
class SystemMessage:
    """Control message for a naplet."""

    control: str
    target: NapletID
    payload: Any = None
    sender: NapletID | str = "system"
    message_id: int = field(default_factory=_next_seq)
    sent_at: float = field(default_factory=time.time)


@dataclass(frozen=True)
class DeliveryReceipt:
    """Confirmation kept by the sending Messenger for later inquiry.

    ``status`` is one of ``delivered`` (mailbox insertion at the first
    server), ``forwarded`` (caught up after ``hops`` forwarding steps),
    ``parked`` (target not yet arrived; waiting in a special mailbox).
    """

    message_id: int
    target: NapletID
    status: str
    final_server: str
    hops: int = 0


_JOIN_KEY = "__naplet_join__"


def make_join_body(token: str) -> dict[str, str]:
    """Body of a Par-join notification message."""
    return {_JOIN_KEY: token}


def join_token_of(body: Any) -> str | None:
    """Extract a join token from a message body, if it is a join notice."""
    if isinstance(body, dict) and _JOIN_KEY in body:
        return str(body[_JOIN_KEY])
    return None
