"""NapletManager (paper §2.2).

The manager is the local users' interface: launch naplets, monitor their
execution states, control their behaviour.  It maintains the *naplet table*
of resident naplets and keeps *footprints* of all past and current alien
naplets — the trace that directory-less message forwarding and management
tooling rely on ("the NapletManager maintains the source and destination
information about each naplet visit").

It also owns the home-side listener registry: launching with a
:class:`~repro.core.listener.NapletListener` hands the travelling naplet a
serializable :class:`~repro.core.listener.ListenerRef` pointing back here.
"""

from __future__ import annotations

import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.core.errors import NapletError
from repro.core.listener import ListenerRef, NapletListener, ReportEnvelope
from repro.core.naplet_id import NapletID
from repro.util.timeutil import unique_compact_timestamp

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.naplet import Naplet
    from repro.server.server import NapletServer

__all__ = ["Footprint", "ResidentRecord", "NapletManager"]


@dataclass
class ResidentRecord:
    """One row of the naplet table: a currently resident naplet."""

    naplet: "Naplet"
    arrived_from: str | None
    arrived_at: float = field(default_factory=time.time)


@dataclass
class Footprint:
    """Visit trace of one naplet at this server (kept after departure)."""

    naplet_id: NapletID
    arrived_from: str | None
    arrived_at: float
    departed_to: str | None = None
    departed_at: float | None = None
    outcome: str | None = None

    @property
    def still_here(self) -> bool:
        return self.departed_to is None and self.outcome is None


class NapletManager:
    """Naplet table, footprints, launching, and home listeners."""

    def __init__(self, server: "NapletServer") -> None:
        self.server = server
        self._residents: dict[NapletID, ResidentRecord] = {}
        self._footprints: dict[NapletID, Footprint] = {}
        self._listeners: dict[str, NapletListener] = {}
        self._launched: list[NapletID] = []
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    # Launching (realized by the home Navigator; see paper §2.2)
    # ------------------------------------------------------------------ #

    def launch(
        self,
        naplet: "Naplet",
        owner: str,
        listener: NapletListener | None = None,
        attributes: dict[str, str] | None = None,
    ) -> NapletID:
        """Mint identity, sign the credential, and send the naplet off.

        Returns the assigned :class:`NapletID`.  A naplet whose itinerary
        admits no visit is retired immediately (degenerate journey).
        """
        if not naplet.has_itinerary:
            raise NapletError(f"naplet {naplet.name!r} cannot launch without an itinerary")
        if not naplet.has_id:
            nid = NapletID.create(
                owner=owner,
                home=self.server.hostname,
                stamp=unique_compact_timestamp(),
            )
            self.server.authority.register_owner(owner)
            credential = self.server.authority.issue(
                nid, naplet.codebase, attributes or {}
            )
            naplet._assign_identity(nid, credential)
        nid = naplet.naplet_id
        if listener is not None:
            key = self.register_listener(listener)
            naplet.set_listener(ListenerRef(home_urn=self.server.urn, listener_key=key))
        with self._lock:
            self._launched.append(nid)
        self.server.events.record("naplet-launch", naplet=str(nid), owner=owner)
        telemetry = self.server.telemetry
        telemetry.launches.inc()
        # Root span of the journey tree: hop/message spans parent to it via
        # the context minted here, which travels inside migration frames.
        ctx = naplet._ensure_trace()
        with telemetry.tracer.span(
            "launch",
            ctx,
            parent_id="",  # explicit root (no parent)
            span_id=ctx.span_id,
            naplet=str(nid),
            owner=owner,
            home=self.server.hostname,
        ):
            self.server.navigator.launch(naplet)
        return nid

    def launched_ids(self) -> list[NapletID]:
        with self._lock:
            return list(self._launched)

    # ------------------------------------------------------------------ #
    # Naplet table & footprints
    # ------------------------------------------------------------------ #

    def record_arrival(self, naplet: "Naplet", arrived_from: str | None) -> None:
        nid = naplet.naplet_id
        with self._lock:
            self._residents[nid] = ResidentRecord(naplet=naplet, arrived_from=arrived_from)
            self._footprints[nid] = Footprint(
                naplet_id=nid, arrived_from=arrived_from, arrived_at=time.time()
            )

    def record_departure(self, nid: NapletID, departed_to: str) -> None:
        with self._lock:
            self._residents.pop(nid, None)
            footprint = self._footprints.get(nid)
            if footprint is not None:
                footprint.departed_to = departed_to
                footprint.departed_at = time.time()

    def begin_departure(self, nid: NapletID, departed_to: str) -> ResidentRecord | None:
        """Mark *nid* in transit BEFORE the transfer is attempted.

        From this moment the messenger treats the naplet as gone: messages
        are forwarded toward *departed_to* (where they are parked until the
        naplet lands) instead of being deposited in a mailbox the naplet
        will never read again.  Returns the resident record for a possible
        :meth:`abort_departure` rollback.
        """
        with self._lock:
            record = self._residents.pop(nid, None)
            footprint = self._footprints.get(nid)
            if footprint is not None:
                footprint.departed_to = departed_to
                footprint.departed_at = time.time()
            return record

    def abort_departure(self, nid: NapletID, record: ResidentRecord | None) -> None:
        """Roll back :meth:`begin_departure` after a failed transfer."""
        with self._lock:
            if record is not None:
                self._residents[nid] = record
            footprint = self._footprints.get(nid)
            if footprint is not None:
                footprint.departed_to = None
                footprint.departed_at = None

    def record_retirement(self, nid: NapletID, outcome: str) -> None:
        with self._lock:
            self._residents.pop(nid, None)
            footprint = self._footprints.get(nid)
            if footprint is not None:
                footprint.outcome = outcome
                footprint.departed_at = time.time()

    def resident(self, nid: NapletID) -> "Naplet | None":
        with self._lock:
            record = self._residents.get(nid)
            return record.naplet if record is not None else None

    def is_resident(self, nid: NapletID) -> bool:
        with self._lock:
            return nid in self._residents

    def resident_ids(self) -> list[NapletID]:
        with self._lock:
            return list(self._residents)

    def footprint(self, nid: NapletID) -> Footprint | None:
        with self._lock:
            return self._footprints.get(nid)

    def footprints(self) -> list[Footprint]:
        with self._lock:
            return list(self._footprints.values())

    def trace_next_hop(self, nid: NapletID) -> str | None:
        """Where the naplet went after visiting here (forwarding hint)."""
        with self._lock:
            footprint = self._footprints.get(nid)
            if footprint is None:
                return None
            return footprint.departed_to

    @property
    def resident_count(self) -> int:
        with self._lock:
            return len(self._residents)

    def resident_count_for_owner(self, owner: str) -> int:
        """Residents belonging to *owner* (for per-owner admission caps)."""
        with self._lock:
            return sum(1 for nid in self._residents if nid.owner == owner)

    # ------------------------------------------------------------------ #
    # Home listeners
    # ------------------------------------------------------------------ #

    def register_listener(self, listener: NapletListener, key: str | None = None) -> str:
        key = key or uuid.uuid4().hex[:12]
        with self._lock:
            if key in self._listeners:
                raise NapletError(f"listener key already registered: {key!r}")
            self._listeners[key] = listener
        return key

    def deliver_report(self, listener_key: str, reporter: Any, payload: Any) -> bool:
        with self._lock:
            listener = self._listeners.get(listener_key)
        if listener is None:
            return False
        listener.deliver(
            ReportEnvelope(listener_key=listener_key, reporter=reporter, payload=payload)
        )
        return True

    def unregister_listener(self, key: str) -> None:
        with self._lock:
            self._listeners.pop(key, None)
