"""Space administration console.

The paper's NapletManager "provides local users or application programs
with an interface to launch naplets, monitor their execution states, and
control their behaviors", and keeps footprints "for management purposes".
:class:`SpaceAdmin` is that interface lifted to the whole naplet space: it
aggregates the per-server naplet tables, footprints and monitors into
space-wide queries — where is naplet X, what has it visited, what is it
consuming — and routes control operations by location.

This console is in-process (it holds the server objects); for a TCP-split
deployment one would front it with frames, which the underlying queries
already support per server.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.core.errors import NapletError, NapletLocationError
from repro.core.naplet_id import NapletID
from repro.health.findings import HealthFinding, Severity
from repro.health.profile import ResourceProfile
from repro.server.manager import Footprint
from repro.server.messages import SystemControl
from repro.server.monitor import ResourceUsage
from repro.telemetry.journal import JournalRecord, merge_journals
from repro.telemetry.journey import Journey, stitch
from repro.telemetry.metrics import MetricsSnapshot
from repro.telemetry.trace import Span

if TYPE_CHECKING:  # pragma: no cover
    from repro.server.server import NapletServer

__all__ = ["NapletStatus", "ServerSummary", "SpaceAdmin"]


@dataclass(frozen=True)
class NapletStatus:
    """Space-wide view of one naplet."""

    naplet_id: NapletID
    resident_at: str | None  # hostname, None when not running anywhere
    in_transit: bool
    outcome: str | None  # terminal outcome if retired
    servers_visited: tuple[str, ...]
    cpu_seconds: float | None
    messages_sent: int | None

    @property
    def alive(self) -> bool:
        return self.resident_at is not None or self.in_transit


@dataclass(frozen=True)
class ServerSummary:
    """One server's row in the space summary."""

    hostname: str
    residents: int
    admitted_total: int
    outcomes: dict[str, int]
    active_channels: int
    footprints: int
    active_naplets: int = 0  # monitor threads currently running
    dead_letter_depth: int = 0  # undeliverable messages awaiting requeue
    health_findings: int = 0  # active watchdog findings


class SpaceAdmin:
    """Administrative console over a set of naplet servers."""

    def __init__(self, servers: "Iterable[NapletServer] | dict[str, NapletServer]") -> None:
        if isinstance(servers, dict):
            servers = servers.values()
        self._servers: dict[str, "NapletServer"] = {s.hostname: s for s in servers}
        if not self._servers:
            raise NapletError("SpaceAdmin needs at least one server")

    @property
    def hostnames(self) -> list[str]:
        return sorted(self._servers)

    def _any_server(self) -> "NapletServer":
        return next(iter(self._servers.values()))

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def locate(self, nid: NapletID) -> str | None:
        """Hostname where *nid* currently resides (None if nowhere)."""
        for hostname, server in self._servers.items():
            if server.manager.is_resident(nid):
                return hostname
        return None

    def trace(self, nid: NapletID) -> list[Footprint]:
        """The naplet's journey, reconstructed from per-server footprints,
        ordered by arrival time."""
        footprints = [
            fp
            for server in self._servers.values()
            if (fp := server.manager.footprint(nid)) is not None
        ]
        footprints.sort(key=lambda fp: fp.arrived_at)
        return footprints

    def status(self, nid: NapletID) -> NapletStatus:
        """Aggregate status of one naplet across the space."""
        resident_at = self.locate(nid)
        trace = self.trace(nid)
        outcome = None
        for footprint in trace:
            if footprint.outcome is not None:
                outcome = footprint.outcome
        in_transit = (
            resident_at is None
            and outcome is None
            and any(fp.departed_to is not None for fp in trace)
        )
        usage: ResourceUsage | None = None
        if resident_at is not None:
            usage = self._servers[resident_at].monitor.usage_of(nid)
        visited = tuple(
            host
            for fp in trace
            if (host := _host_of_fp(fp, self._servers)) is not None
        )
        return NapletStatus(
            naplet_id=nid,
            resident_at=resident_at,
            in_transit=in_transit,
            outcome=outcome,
            servers_visited=visited,
            cpu_seconds=usage.cpu_seconds if usage else None,
            messages_sent=usage.messages_sent if usage else None,
        )

    def alive_naplets(self) -> dict[NapletID, str]:
        """Every resident naplet in the space: id -> hostname."""
        alive: dict[NapletID, str] = {}
        for hostname, server in self._servers.items():
            for nid in server.manager.resident_ids():
                alive[nid] = hostname
        return alive

    def space_summary(self) -> list[ServerSummary]:
        """Per-server health rows for the whole space."""
        rows = []
        for hostname in self.hostnames:
            server = self._servers[hostname]
            rows.append(
                ServerSummary(
                    hostname=hostname,
                    residents=server.manager.resident_count,
                    admitted_total=server.monitor.admitted,
                    outcomes=dict(server.monitor.outcomes),
                    active_channels=server.resource_manager.active_channel_count,
                    footprints=len(server.manager.footprints()),
                    active_naplets=server.monitor.active_count,
                    dead_letter_depth=len(server.messenger.dead_letters),
                    health_findings=len(server.health.findings()),
                )
            )
        return rows

    # ------------------------------------------------------------------ #
    # Telemetry (space-wide)
    # ------------------------------------------------------------------ #

    def journey(self, nid: NapletID) -> Journey:
        """Stitch the cross-server spans of *nid*'s journey into one tree.

        Scans every server's tracer for spans tagged with the naplet id to
        learn its trace id(s) — a clone family shares one trace — then
        collects *all* spans of those traces (including message-forward
        spans recorded at servers the naplet never visited) and stitches
        them by parent reference.
        """
        key = str(nid)
        trace_ids = {
            span.trace_id
            for server in self._servers.values()
            for span in server.telemetry.tracer.spans()
            if span.attr("naplet") == key
        }
        spans: list[Span] = [
            span
            for server in self._servers.values()
            for span in server.telemetry.tracer.spans()
            if span.trace_id in trace_ids
        ]
        return stitch(spans)

    def space_metrics(self) -> MetricsSnapshot:
        """One merged snapshot over every server registry and transport.

        Servers are visited in sorted-hostname order so the merge (and any
        text rendering of it) is deterministic regardless of construction
        order.  Transports are deduplicated by identity: in-memory spaces
        share one transport object across servers, TCP-split spaces may
        not.
        """
        ordered = [self._servers[hostname] for hostname in self.hostnames]
        snapshots = [server.telemetry.registry.snapshot() for server in ordered]
        seen: set[int] = set()
        for server in ordered:
            transport = server.transport
            if id(transport) in seen:
                continue
            seen.add(id(transport))
            snapshots.append(transport.metrics.snapshot())
        return MetricsSnapshot.merged(snapshots)

    def harvest_journal(
        self,
        naplet: str | None = None,
        kind: str | None = None,
        category: str | None = None,
        trace_id: str | None = None,
    ) -> list["JournalRecord"]:
        """Merge every server's flight-recorder journal into one timeline.

        Records are causally ordered by their hybrid-logical-clock stamps
        (DESIGN.md §6.5), so a hop's departure always precedes its landing
        even when the servers' wall clocks disagree.  Filters pass through
        to each server's journal before the merge.
        """
        return merge_journals(
            self._servers[hostname].journal.records(
                naplet=naplet, kind=kind, category=category, trace_id=trace_id
            )
            for hostname in self.hostnames
        )

    # ------------------------------------------------------------------ #
    # Health plane (space-wide)
    # ------------------------------------------------------------------ #

    def space_health(self) -> dict[str, dict]:
        """Every server's health snapshot (findings + profiles), by host."""
        return {
            hostname: self._servers[hostname].health.describe()
            for hostname in self.hostnames
        }

    def space_view(self) -> dict[str, dict]:
        """Every server's merged load view (observatory snapshot), by host.

        Each snapshot carries the server's own on-demand digest plus the
        peer digests it has merged, with staleness aging applied — the
        same structure the ``load`` open service exposes in-space.
        """
        return {
            hostname: self._servers[hostname].observatory.describe()
            for hostname in self.hostnames
        }

    def space_findings(self) -> list["HealthFinding"]:
        """All active watchdog findings, most severe first."""
        findings: list[HealthFinding] = []
        for hostname in self.hostnames:
            findings.extend(self._servers[hostname].health.findings())
        findings.sort(key=lambda f: (-Severity.rank(f.severity), f.first_seen))
        return findings

    def resource_profiles(self, nid: NapletID) -> dict[str, "ResourceProfile"]:
        """Per-server resource profiles recorded for *nid* (host → profile)."""
        profiles: dict[str, ResourceProfile] = {}
        for hostname in self.hostnames:
            profile = self._servers[hostname].health.profile(nid)
            if profile is not None:
                profiles[hostname] = profile
        return profiles

    def top_naplets_by_cpu(self, count: int = 5) -> list[tuple[str, "ResourceProfile"]]:
        """The space's busiest naplets: (hostname, profile), hottest first."""
        candidates: list[tuple[str, ResourceProfile]] = []
        for hostname in self.hostnames:
            for profile in self._servers[hostname].health.profiles:
                if profile.latest is not None:
                    candidates.append((hostname, profile))
        candidates.sort(key=lambda hp: hp[1].latest.cpu_seconds, reverse=True)  # type: ignore[union-attr]
        return candidates[:count]

    # ------------------------------------------------------------------ #
    # Dead letters
    # ------------------------------------------------------------------ #

    def dead_letters(self, hostname: str | None = None) -> dict[str, list[dict]]:
        """Undelivered-message backlog per host (described, not drained)."""
        hosts = [hostname] if hostname is not None else self.hostnames
        return {
            host: [
                letter.describe()
                for letter in self._servers[host].messenger.dead_letters.peek()
            ]
            for host in hosts
        }

    def dead_letter_depth(self) -> int:
        """Total dead letters waiting anywhere in the space."""
        return sum(
            len(server.messenger.dead_letters) for server in self._servers.values()
        )

    def requeue_dead_letters(self, hostname: str | None = None) -> tuple[int, int]:
        """Redeliver dead letters space-wide (or on one host) after a heal.

        Returns the space-wide ``(delivered, requeued)`` totals.
        """
        servers = (
            [self._servers[hostname]]
            if hostname is not None
            else list(self._servers.values())
        )
        delivered = requeued = 0
        for server in servers:
            got, kept = server.messenger.requeue_dead_letters()
            delivered += got
            requeued += kept
        return delivered, requeued

    # ------------------------------------------------------------------ #
    # Control (location-routed)
    # ------------------------------------------------------------------ #

    def _control(self, nid: NapletID, control: str, payload=None) -> None:
        hostname = self.locate(nid)
        if hostname is not None:
            self._servers[hostname].messenger.send_control(
                nid, control, payload, dest_urn=self._servers[hostname].urn
            )
            return
        # not resident anywhere: let any server chase it via its directory
        try:
            self._any_server().messenger.send_control(nid, control, payload)
        except NapletLocationError:
            raise NapletError(f"cannot control {nid}: not found in the space") from None

    def terminate(self, nid: NapletID, reason: str | None = None) -> None:
        self._control(nid, SystemControl.TERMINATE, reason)

    def suspend(self, nid: NapletID) -> None:
        self._control(nid, SystemControl.SUSPEND)

    def resume(self, nid: NapletID) -> None:
        self._control(nid, SystemControl.RESUME)

    def callback(self, nid: NapletID, payload=None) -> None:
        self._control(nid, SystemControl.CALLBACK, payload)

    def terminate_all(self) -> int:
        """Emergency stop: terminate every resident naplet. Returns count."""
        count = 0
        for nid, hostname in self.alive_naplets().items():
            self._servers[hostname].messenger.send_control(
                nid, SystemControl.TERMINATE, "terminate_all",
                dest_urn=self._servers[hostname].urn,
            )
            count += 1
        return count

    def _space_is_idle(self) -> bool:
        # Residency alone is not enough: after a fast-path hop the source
        # worker thread is still unwinding (closing its hop span, retiring
        # the run) while the naplet is already resident — and possibly
        # already finished — at the destination.  Requiring every monitor's
        # run table to drain too means "idle" implies every span of every
        # journey has been recorded.
        if self.alive_naplets():
            return False
        return all(
            server.monitor.active_count == 0 for server in self._servers.values()
        )

    def wait_space_idle(self, timeout: float = 10.0) -> bool:
        """Block until no naplet runs anywhere in the space."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self._space_is_idle():
                return True
            time.sleep(0.01)
        return self._space_is_idle()


def _host_of_fp(footprint: Footprint, servers: dict) -> str | None:
    """Hostname a footprint belongs to (the server whose manager holds it)."""
    for hostname, server in servers.items():
        if server.manager.footprint(footprint.naplet_id) is footprint:
            return hostname
    return None
