"""Service channels (paper §2.2, §5.3).

A :class:`ServiceChannel` is "essentially a synchronous pipe" between an
alien naplet and a restricted privileged service: the server assigns one
pair of endpoints (:class:`ServiceReader`/:class:`ServiceWriter`) to the
service and the other pair (:class:`NapletWriter`/:class:`NapletReader`) to
the naplet.  Data written by ``NapletWriter`` is read by ``ServiceReader``;
data written by ``ServiceWriter`` is read by ``NapletReader``.

Endpoints carry generic picklable objects; ``write_line``/``read_line``
aliases keep the paper's text-protocol listings readable.  ``EOF`` is the
stream-end sentinel (``in.readLine() != EOF`` in the paper's NMNaplet).

:class:`PrivilegedService` is the base class services extend (the paper's
``naplet.server.PrivilegedService``): subclasses implement :meth:`run` using
``self.reader``/``self.writer``; the ResourceManager starts one service
instance per channel on its own thread.
"""

from __future__ import annotations

import abc
import queue
import threading
import time
from typing import Any

from repro.core.errors import ServiceChannelClosed

__all__ = [
    "EOF",
    "ServiceChannel",
    "NapletReader",
    "NapletWriter",
    "ServiceReader",
    "ServiceWriter",
    "PrivilegedService",
]


class _Eof:
    _instance: "_Eof | None" = None

    def __new__(cls) -> "_Eof":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "EOF"


EOF = _Eof()


class _Pipe:
    """One direction of the channel: a closable bounded queue."""

    def __init__(self, maxsize: int = 0) -> None:
        self._queue: "queue.Queue[Any]" = queue.Queue(maxsize)
        self._closed = threading.Event()

    def write(self, item: Any) -> None:
        if self._closed.is_set():
            raise ServiceChannelClosed("write on a closed service channel")
        self._queue.put(item)

    def read(self, timeout: float | None = None) -> Any:
        """Next item, or EOF once the pipe is closed and drained.

        Polls in short slices so a close() issued while a reader is blocked
        is noticed promptly (the service side often blocks in read while the
        naplet departs and its channels are torn down).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            try:
                return self._queue.get(timeout=0.05)
            except queue.Empty:
                if self._closed.is_set():
                    return EOF
                if deadline is not None and time.monotonic() >= deadline:
                    raise ServiceChannelClosed(
                        f"service channel read timed out after {timeout}s"
                    ) from None

    def close(self) -> None:
        self._closed.set()

    @property
    def closed(self) -> bool:
        return self._closed.is_set()


class _ReadEnd:
    def __init__(self, pipe: _Pipe, default_timeout: float | None) -> None:
        self._pipe = pipe
        self._default_timeout = default_timeout

    def read(self, timeout: float | None = None) -> Any:
        return self._pipe.read(timeout if timeout is not None else self._default_timeout)

    def read_line(self, timeout: float | None = None) -> Any:
        return self.read(timeout)

    def __iter__(self) -> Any:
        while True:
            item = self.read()
            if item is EOF:
                return
            yield item


class _WriteEnd:
    def __init__(self, pipe: _Pipe) -> None:
        self._pipe = pipe

    def write(self, item: Any) -> None:
        self._pipe.write(item)

    def write_line(self, item: Any) -> None:
        self.write(item)

    def close(self) -> None:
        self._pipe.close()


class NapletReader(_ReadEnd):
    """Naplet-side read endpoint (fed by the service's ServiceWriter)."""


class NapletWriter(_WriteEnd):
    """Naplet-side write endpoint (drained by the service's ServiceReader)."""


class ServiceReader(_ReadEnd):
    """Service-side read endpoint."""


class ServiceWriter(_WriteEnd):
    """Service-side write endpoint."""


class ServiceChannel:
    """The four endpoints of one naplet <-> privileged-service pipe pair."""

    def __init__(
        self,
        service_name: str,
        read_timeout: float | None = 30.0,
        maxsize: int = 0,
    ) -> None:
        self.service_name = service_name
        self._to_service = _Pipe(maxsize)
        self._to_naplet = _Pipe(maxsize)
        self.naplet_writer = NapletWriter(self._to_service)
        self.naplet_reader = NapletReader(self._to_naplet, read_timeout)
        self.service_reader = ServiceReader(self._to_service, read_timeout)
        self.service_writer = ServiceWriter(self._to_naplet)

    # Paper-style accessors -------------------------------------------------- #

    def get_naplet_writer(self) -> NapletWriter:
        return self.naplet_writer

    def get_naplet_reader(self) -> NapletReader:
        return self.naplet_reader

    def close(self) -> None:
        self._to_service.close()
        self._to_naplet.close()

    @property
    def closed(self) -> bool:
        return self._to_service.closed and self._to_naplet.closed

    # -- transient: channels never travel with a naplet ----------------------- #

    def __reduce__(self) -> Any:  # pragma: no cover - defensive
        raise TypeError("ServiceChannel endpoints are transient and not serializable")


class PrivilegedService(abc.ABC):
    """Base class for restricted privileged services (paper §6.1).

    One instance serves one channel.  The ResourceManager instantiates the
    service, binds the service-side endpoints, and runs :meth:`run` on a
    dedicated daemon thread.  ``run`` typically loops reading requests until
    EOF.
    """

    def __init__(self) -> None:
        self.reader: ServiceReader | None = None
        self.writer: ServiceWriter | None = None
        self._thread: threading.Thread | None = None

    def bind(self, reader: ServiceReader, writer: ServiceWriter) -> None:
        self.reader = reader
        self.writer = writer

    # Paper-style aliases: `in` is a Python keyword, so `self.input`.
    @property
    def input(self) -> ServiceReader:
        assert self.reader is not None, "service not bound to a channel"
        return self.reader

    @property
    def output(self) -> ServiceWriter:
        assert self.writer is not None, "service not bound to a channel"
        return self.writer

    @abc.abstractmethod
    def run(self) -> None:
        """Serve the channel until EOF."""

    def start(self, name: str) -> None:
        def _runner() -> None:
            try:
                self.run()
            except ServiceChannelClosed:
                pass
            finally:
                if self.writer is not None:
                    self.writer.close()

        self._thread = threading.Thread(target=_runner, name=name, daemon=True)
        self._thread.start()

    def join(self, timeout: float | None = None) -> None:
        if self._thread is not None:
            self._thread.join(timeout)
