"""Naplet tracing and location (paper §4.1).

The :class:`Locator` answers "where is naplet X now?" for the Messenger and
the NapletManager.  It consults, in order:

1. its **cache** of recently inquired locations (reducing the response time
   of subsequent requests, as the paper prescribes);
2. the **directory service** via the server's
   :class:`~repro.server.directory.DirectoryClient` (central or home mode);
3. nothing — in directory-less systems it returns ``None`` and the
   Messenger falls back to address-book seeds plus trace forwarding.

Cache entries are invalidated on migration notifications and expire after a
TTL so stale locations self-heal; a stale answer is *safe* regardless,
because message forwarding chases naplets along server traces.  The cache
is LRU-bounded (``cache_capacity``) so a long-running server tracking
millions of naplets cannot grow it without limit; evictions are counted in
telemetry.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import TYPE_CHECKING, Callable

from repro.core.naplet_id import NapletID
from repro.server.directory import DirectoryClient, DirectoryRecord
from repro.util.eventlog import EventLog

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.exposition import ServerTelemetry

__all__ = ["Locator"]


class Locator:
    """Location service with a bounded (LRU + TTL) cache before the directory."""

    def __init__(
        self,
        directory: DirectoryClient,
        cache_ttl: float = 5.0,
        events: EventLog | None = None,
        telemetry: "ServerTelemetry | None" = None,
        cache_capacity: int | None = None,
        time_source: "Callable[[], float]" = time.monotonic,
    ) -> None:
        self.directory = directory
        self.cache_ttl = cache_ttl
        self.cache_capacity = cache_capacity
        self._now = time_source
        self.events = events if events is not None else EventLog()
        self.telemetry = telemetry
        self._cache: OrderedDict[NapletID, tuple[str, float]] = OrderedDict()
        self._lock = threading.Lock()
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0

    # -- cache maintenance ----------------------------------------------- #

    def note_location(self, nid: NapletID, urn: str) -> None:
        """Record a location learned out-of-band (confirmations, arrivals)."""
        evicted = 0
        with self._lock:
            self._cache[nid] = (urn, self._now())
            self._cache.move_to_end(nid)
            if self.cache_capacity is not None:
                while len(self._cache) > self.cache_capacity:
                    self._cache.popitem(last=False)
                    self.cache_evictions += 1
                    evicted += 1
        if evicted and self.telemetry is not None:
            self.telemetry.locator_evictions.inc(evicted)

    def invalidate(self, nid: NapletID) -> None:
        with self._lock:
            self._cache.pop(nid, None)

    def _cached(self, nid: NapletID) -> str | None:
        with self._lock:
            entry = self._cache.get(nid)
            if entry is None:
                return None
            urn, stamp = entry
            if self._now() - stamp > self.cache_ttl:
                del self._cache[nid]
                return None
            self._cache.move_to_end(nid)  # a hit refreshes LRU recency
            return urn

    # -- location ----------------------------------------------------------- #

    def locate(self, nid: NapletID, use_cache: bool = True) -> str | None:
        """Best-known server URN for *nid* (None when untraceable)."""
        if use_cache:
            cached = self._cached(nid)
            if cached is not None:
                self.cache_hits += 1
                if self.telemetry is not None:
                    self.telemetry.locator_hits.inc()
                self.events.record("locator-cache-hit", naplet=str(nid), urn=cached)
                return cached
        self.cache_misses += 1
        if self.telemetry is not None:
            self.telemetry.locator_misses.inc()
        self.events.record("locator-cache-miss", naplet=str(nid))
        record = self.directory.lookup(nid)
        if record is None:
            return None
        self.note_location(nid, record.server_urn)
        return record.server_urn

    def lookup_record(self, nid: NapletID) -> DirectoryRecord | None:
        """Full directory record (event + server), bypassing the cache."""
        return self.directory.lookup(nid)

    @property
    def cache_size(self) -> int:
        with self._lock:
            return len(self._cache)
