"""Navigator: launching and migration (paper §2.2, §4.1).

Migration protocol, exactly the paper's sequence:

1. the source Navigator consults its NapletSecurityManager for **LAUNCH**
   permission;
2. it contacts the destination Navigator for **LANDING** permission (the
   destination consults its own security manager and resource manager);
3. on grant it reports DEPART to the directory, serializes the naplet
   (transient context dropped) and transfers it;
4. the destination registers ARRIVAL with the directory and *postpones
   execution until the registration is acknowledged*, then records the
   arrival with its NapletManager, creates the mailbox (draining the
   special mailbox), binds a fresh context and hands control to the
   NapletMonitor;
5. success releases all resources the naplet held at the source.

The per-naplet :class:`NavigatorOps` object implements the itinerary
driver's :class:`~repro.itinerary.itinerary.TravelOps` protocol — dispatch,
clone spawning, credential re-issue, and Par join signalling.
"""

from __future__ import annotations

import pickle
from typing import TYPE_CHECKING

from repro.core.context import NapletContext
from repro.core.credential import Credential
from repro.core.errors import (
    LandingDeniedError,
    NapletCommunicationError,
    NapletDeparted,
    NapletMigrationError,
)
from repro.core.naplet_id import NapletID
from repro.server.messenger import NapletMessengerProxy
from repro.server.monitor import NapletOutcome, _ControlBlock
from repro.server.security import Permission
from repro.transport.base import Frame, FrameKind, urn_of

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.naplet import Naplet
    from repro.server.server import NapletServer

__all__ = ["Navigator", "NavigatorOps"]


class Navigator:
    """Per-server migration endpoint."""

    def __init__(self, server: "NapletServer") -> None:
        self.server = server
        self.migrations_out = 0
        self.migrations_in = 0

    # ------------------------------------------------------------------ #
    # Outbound
    # ------------------------------------------------------------------ #

    def launch(self, naplet: "Naplet") -> None:
        """Initial launch from the home manager (paper: 'similar to agent
        migration')."""
        ops = NavigatorOps(self, naplet)
        nid = naplet.naplet_id
        # Footprint at home so early messages seeded with the home URN can
        # chase the naplet by trace forwarding.
        self.server.manager.record_arrival(naplet, arrived_from=None)
        sent = {"dest": None}

        def _transfer(destination: str) -> None:
            self.transfer(naplet, urn_of(destination))
            sent["dest"] = urn_of(destination)

        try:
            travelled = naplet.itinerary.launch_with(naplet, ops, _transfer)
        except NapletMigrationError:
            self.server.manager.record_retirement(nid, "launch-failed")
            raise
        if not travelled:
            # Degenerate journey: nothing admitted. Retire without travel.
            self.server.manager.record_retirement(nid, "completed")
            self.server.events.record("naplet-degenerate-launch", naplet=str(nid))
            naplet.on_destroy()
            return
        self.server.messenger.remove_mailbox(nid, forward_to=sent["dest"])
        self.migrations_out += 1

    def dispatch(self, naplet: "Naplet", dest_urn: str) -> None:
        """Migrate a *resident* naplet; raises NapletDeparted on success."""
        dest_urn = urn_of(dest_urn)
        nid = naplet.naplet_id
        self.transfer(naplet, dest_urn)  # marks the departure itself
        # Success: release everything the naplet held here (paper §2.2).
        self.server.resource_manager.release(nid)
        self.server.messenger.remove_mailbox(nid, forward_to=dest_urn)
        naplet._bind_context(None)
        self.migrations_out += 1
        raise NapletDeparted(dest_urn)

    def transfer(self, naplet: "Naplet", dest_urn: str) -> None:
        """Run the LAUNCH/LANDING/transfer protocol toward *dest_urn*."""
        telemetry = self.server.telemetry
        with telemetry.naplet_span(
            naplet, "hop", source=self.server.hostname, dest=dest_urn
        ) as hop:
            self._transfer(naplet, dest_urn, hop)
        telemetry.hops.inc()
        telemetry.hop_latency.observe(hop.duration)

    def _transfer(self, naplet: "Naplet", dest_urn: str, hop) -> None:
        nid = naplet.naplet_id
        credential = naplet.credential
        # 1. LAUNCH permission at the source.
        self.server.security.check(credential, Permission.LAUNCH)
        # 2. LANDING permission at the destination.
        request = Frame(
            kind=FrameKind.LANDING_REQUEST,
            source=self.server.urn,
            dest=dest_urn,
            payload=pickle.dumps(credential),
            headers={"naplet": str(nid)},
        )
        try:
            reply = pickle.loads(self.server.transport.request(request))
        except NapletCommunicationError as exc:
            raise NapletMigrationError(f"cannot reach {dest_urn}: {exc}") from exc
        if not reply.get("granted", False):
            self.server.events.record(
                "landing-denied", naplet=str(nid), dest=dest_urn, reason=reply.get("reason")
            )
            raise LandingDeniedError(
                f"{dest_urn} denied landing for {nid}: {reply.get('reason', 'unknown')}"
            )
        # 3. Mark the naplet in transit *before* the wire transfer: the
        # directory's latest event must never run behind the synchronous
        # landing, and messages arriving here during the transfer must be
        # forwarded toward the destination, not deposited in a mailbox the
        # naplet will never read.  Both are rolled back on failure.
        was_resident = self.server.manager.is_resident(nid)
        resident_record = self.server.manager.begin_departure(nid, dest_urn)
        self.server.directory_client.report_departure(nid, self.server.urn)
        if naplet.navigation_log.current_server() == self.server.urn:
            naplet.navigation_log.record_departure(self.server.urn)
        payload = self.server.serializer.dumps(naplet)
        hop.set("bytes", len(payload))
        self.server.telemetry.frame_bytes.inc(len(payload), kind="naplet-transfer")
        headers = {"naplet": str(nid)}
        if hop.span_id:
            # The landing span at the destination nests under this hop.
            ctx = naplet.trace_context
            if ctx is not None:
                headers["trace-id"] = ctx.trace_id
                headers["trace-parent"] = hop.span_id
        frame = Frame(
            kind=FrameKind.NAPLET_TRANSFER,
            source=self.server.urn,
            dest=dest_urn,
            payload=payload,
            headers=headers,
        )
        self.server.events.record(
            "naplet-depart", naplet=str(nid), dest=dest_urn, bytes=len(payload)
        )
        def _rollback() -> None:
            self.server.manager.abort_departure(nid, resident_record)
            if naplet.navigation_log.servers_visited() and not naplet.navigation_log.current_server():
                naplet.navigation_log.record_arrival(self.server.urn)
            if was_resident:
                self.server.directory_client.report_arrival(nid, self.server.urn)

        try:
            ack = pickle.loads(self.server.transport.request(frame))
        except NapletCommunicationError as exc:
            _rollback()
            raise NapletMigrationError(f"transfer to {dest_urn} failed: {exc}") from exc
        if ack.get("ok") is not True:
            _rollback()
            raise NapletMigrationError(
                f"{dest_urn} rejected the transfer of {nid}: {ack.get('reason')}"
            )
        # Messages that were parked here waiting for this naplet chase it.
        self.server.messenger.forward_parked(nid, dest_urn)

    # ------------------------------------------------------------------ #
    # Inbound (frame handlers)
    # ------------------------------------------------------------------ #

    def _deny_landing(self, reason: str) -> bytes:
        self.server.telemetry.landings_denied.inc()
        return pickle.dumps({"granted": False, "reason": reason})

    def handle_landing_request(self, frame: Frame) -> bytes:
        credential: Credential = pickle.loads(frame.payload)
        try:
            self.server.security.check(credential, Permission.LANDING)
        except Exception as exc:
            return self._deny_landing(str(exc))
        limit = self.server.config.max_residents
        if limit is not None and self.server.manager.resident_count >= limit:
            return self._deny_landing(f"server full ({limit} residents)")
        owner_limit = self.server.config.max_residents_per_owner
        if owner_limit is not None:
            owner = credential.naplet_id.owner
            if self.server.manager.resident_count_for_owner(owner) >= owner_limit:
                return self._deny_landing(f"owner {owner!r} at capacity ({owner_limit})")
        self.server.events.record(
            "landing-granted", naplet=str(credential.naplet_id), source=frame.source
        )
        return pickle.dumps({"granted": True})

    def handle_transfer(self, frame: Frame) -> bytes:
        try:
            naplet: "Naplet" = self.server.serializer.loads(
                frame.payload, self.server.code_cache
            )
        except Exception as exc:
            return pickle.dumps({"ok": False, "reason": f"deserialization failed: {exc}"})
        self.receive(
            naplet,
            arrived_from=frame.source,
            payload_bytes=len(frame.payload),
            trace_parent=frame.headers.get("trace-parent"),
        )
        return pickle.dumps({"ok": True})

    def receive(
        self,
        naplet: "Naplet",
        arrived_from: str | None,
        payload_bytes: int = 0,
        trace_parent: str | None = None,
    ) -> None:
        """Land *naplet* at this server: register, bind, and start it.

        Shared by the wire transfer path and local revival (thaw).
        ``trace_parent`` is the source hop's span id (from the transfer
        frame headers), so the landing span nests under the hop in the
        journey tree; without one (thaw) it parents to the journey root.
        """
        nid = naplet.naplet_id
        telemetry = self.server.telemetry
        with telemetry.naplet_span(
            naplet,
            "landing",
            parent_id=trace_parent,
            arrived_from=arrived_from,
            bytes=payload_bytes,
        ):
            # Postpone execution until the arrival registration is acknowledged.
            self.server.directory_client.report_arrival(nid, self.server.urn)
            self.server.manager.record_arrival(naplet, arrived_from=arrived_from)
            naplet.navigation_log.record_arrival(self.server.urn)
            self.server.messenger.create_mailbox(nid)
            self.server.locator.note_location(nid, self.server.urn)
        telemetry.landings.inc()
        telemetry.itinerary_depth.observe(len(naplet.navigation_log.servers_visited()))
        self.migrations_in += 1
        self.server.events.record(
            "naplet-arrive",
            naplet=str(nid),
            source=arrived_from,
            bytes=payload_bytes,
        )
        self._start_naplet(naplet)

    def _start_naplet(self, naplet: "Naplet") -> None:
        """Bind a fresh context and hand control to the NapletMonitor."""
        server = self.server

        def prepare(block: _ControlBlock) -> None:
            context = NapletContext(
                server_urn=server.urn,
                hostname=server.hostname,
                dispatcher=NavigatorOps(self, naplet),
                messenger=NapletMessengerProxy(server.messenger, naplet),
                services=server.resource_manager.proxy_for(naplet),
                monitor_hook=block,
                extras={"network": server.network, "tracer": server.telemetry.tracer},
            )
            naplet._bind_context(context)

        def run_body() -> None:
            naplet.on_start()

        def on_retire(
            agent: "Naplet", outcome: str, error: BaseException | None
        ) -> None:
            nid = agent.naplet_id
            if outcome == NapletOutcome.DEPARTED:
                return  # dispatch() already released everything
            server.manager.record_retirement(nid, outcome)
            server.resource_manager.release(nid)
            server.messenger.remove_mailbox(nid)
            if agent.navigation_log.current_server() == server.urn:
                agent.navigation_log.record_departure(server.urn)
            agent._bind_context(None)
            server.events.record(
                "naplet-retired",
                naplet=str(nid),
                outcome=outcome,
                error=repr(error) if error else None,
            )

        quota = server.quota_for(naplet)
        server.monitor.admit(
            naplet, run_body, on_retire, quota=quota, prepare=prepare
        )


class NavigatorOps:
    """TravelOps implementation bound to one naplet at this server."""

    def __init__(self, navigator: Navigator, naplet: "Naplet") -> None:
        self._navigator = navigator
        self._naplet = naplet

    @property
    def origin_urn(self) -> str:
        return self._navigator.server.urn

    def dispatch(self, naplet: "Naplet", destination: str) -> None:
        self._navigator.dispatch(naplet, urn_of(destination))

    def spawn(self, parent: "Naplet", clone: "Naplet", destination: str) -> None:
        server = self._navigator.server
        server.security.check(parent.credential, Permission.CLONE)
        # Leave a trace at the fork origin so messages seeded with this
        # server's URN can chase the clone; transfer() marks the departure
        # (and rolls it back if the spawn fails).
        server.manager.record_arrival(clone, arrived_from=None)
        self._navigator.transfer(clone, urn_of(destination))
        server.events.record(
            "clone-spawned",
            parent=str(parent.naplet_id),
            clone=str(clone.naplet_id),
            dest=destination,
        )

    def issue_clone_credential(self, clone: "Naplet") -> None:
        server = self._navigator.server
        credential = server.authority.issue(
            clone.naplet_id, clone.codebase, clone.inherited_attributes
        )
        clone._cred = credential

    def await_join(
        self, naplet: "Naplet", tokens: set[str], timeout: float | None
    ) -> None:
        proxy = NapletMessengerProxy(self._navigator.server.messenger, naplet)
        proxy.await_join_tokens(tokens, timeout)

    def notify_join(self, naplet: "Naplet", target: NapletID, token: str) -> None:
        proxy = NapletMessengerProxy(self._navigator.server.messenger, naplet)
        proxy.post_join_notice(target, token)
