"""Navigator: launching and migration (paper §2.2, §4.1).

Two-phase migration protocol, exactly the paper's sequence:

1. the source Navigator consults its NapletSecurityManager for **LAUNCH**
   permission;
2. it contacts the destination Navigator for **LANDING** permission (the
   destination consults its own security manager and resource manager);
3. on grant it reports DEPART to the directory, serializes the naplet
   (transient context dropped) and transfers it;
4. the destination registers ARRIVAL with the directory and *postpones
   execution until the registration is acknowledged*, then records the
   arrival with its NapletManager, creates the mailbox (draining the
   special mailbox), binds a fresh context and hands control to the
   NapletMonitor;
5. success releases all resources the naplet held at the source.

**Fast path** (``ServerConfig.migration_fast_path``, on by default): the
credential is piggybacked on the NAPLET_TRANSFER frame, so the destination
performs the landing check and the transfer ack in ONE exchange — no
separate LANDING_REQUEST round trip — and registers depart+arrival with
the directory in one combined event on the source's behalf.  The landing
check still runs *before* the naplet image is deserialized; a denial acks
``{"denied": True}`` and the source rolls back exactly as in the
two-phase protocol.  A destination that does not speak the fast path acks
``{"unsupported": True}`` and the source transparently falls back to the
two-phase sequence.  During the single in-flight window the directory
still shows the naplet at the source; that is safe because the source has
already marked the departure locally, so messages arriving there are
forwarded toward the destination (the standard chase guarantee).

The per-naplet :class:`NavigatorOps` object implements the itinerary
driver's :class:`~repro.itinerary.itinerary.TravelOps` protocol — dispatch,
clone spawning, credential re-issue, and Par join signalling.
"""

from __future__ import annotations

import itertools
import pickle
import time
from collections import OrderedDict, deque
from typing import TYPE_CHECKING

from repro.core.context import NapletContext
from repro.core.credential import Credential
from repro.core.errors import (
    DeltaBaseMissingError,
    LandingDeniedError,
    LaunchDeniedError,
    NapletCommunicationError,
    NapletDeparted,
    NapletMigrationError,
    ShippedCodeMissingError,
)
from repro.core.naplet_id import NapletID
from repro.server.messenger import NapletMessengerProxy
from repro.server.monitor import NapletOutcome, _ControlBlock
from repro.server.security import Permission
from repro.transport.base import Frame, FrameKind, urn_of

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.naplet import Naplet
    from repro.server.server import NapletServer

__all__ = ["Navigator", "NavigatorOps"]

# Hot control replies, serialized once instead of per-exchange.
_GRANTED = pickle.dumps({"granted": True})
_ACK_OK = pickle.dumps({"ok": True})
_FAST_PATH_UNSUPPORTED = pickle.dumps(
    {"ok": False, "unsupported": True, "reason": "fast-path not supported here"}
)

# Remembered transfer-ids per destination navigator: enough to absorb any
# realistic retry window, small enough to never matter for memory.
_TRANSFER_DEDUP_CAPACITY = 4096

# Remembered (naplet, destination) base-image hashes — what each peer last
# acked holding.  Bounded like the dedup table; a dropped entry only costs
# one full-image hop.
_PEER_BASE_CAPACITY = 4096


def _image_nbytes(payload: bytes, buffers: tuple | list = ()) -> int:
    """Wire size of a naplet image: envelope plus out-of-band segments."""
    total = len(payload)
    for buf in buffers:
        total += buf.nbytes if isinstance(buf, memoryview) else len(buf)
    return total


class Navigator:
    """Per-server migration endpoint."""

    def __init__(self, server: "NapletServer") -> None:
        self.server = server
        self.migrations_out = 0
        self.migrations_in = 0
        # Exactly-once landing: retransmitted transfers (the source never
        # saw our ack) are recognized by their transfer-id and re-acked
        # without landing a second copy of the naplet.
        self._landed_transfers: OrderedDict[str, NapletID] = OrderedDict()
        self._transfer_seq = itertools.count(1)
        # Delta-shipping negotiation state (DESIGN.md §6.7), all advisory:
        # which base image hash each peer last acked holding per naplet,
        # which module content hashes each peer's code cache holds, and
        # which peers rejected v2 envelopes outright (v1-only).  Stale or
        # lost entries never break a transfer — they only cost a full
        # image or one extra in-attempt resend.
        self._peer_bases: OrderedDict[tuple[str, str], str] = OrderedDict()
        self._peer_code: dict[str, set[str]] = {}
        self._v1_peers: set[str] = set()

    # ------------------------------------------------------------------ #
    # Outbound
    # ------------------------------------------------------------------ #

    def launch(self, naplet: "Naplet") -> None:
        """Initial launch from the home manager (paper: 'similar to agent
        migration')."""
        ops = NavigatorOps(self, naplet)
        nid = naplet.naplet_id
        # Footprint at home so early messages seeded with the home URN can
        # chase the naplet by trace forwarding.
        self.server.manager.record_arrival(naplet, arrived_from=None)
        sent = {"dest": None}

        def _transfer(destination: str) -> None:
            self.transfer(naplet, urn_of(destination))
            sent["dest"] = urn_of(destination)

        try:
            travelled = naplet.itinerary.launch_with(naplet, ops, _transfer)
        except NapletMigrationError:
            self.server.manager.record_retirement(nid, "launch-failed")
            raise
        if not travelled:
            # Degenerate journey: nothing admitted. Retire without travel.
            self.server.manager.record_retirement(nid, "completed")
            self.server.events.record("naplet-degenerate-launch", naplet=str(nid))
            naplet.on_destroy()
            return
        self.server.messenger.remove_mailbox(nid, forward_to=sent["dest"])
        self.migrations_out += 1

    def dispatch(self, naplet: "Naplet", dest_urn: str) -> None:
        """Migrate a *resident* naplet; raises NapletDeparted on success."""
        dest_urn = urn_of(dest_urn)
        nid = naplet.naplet_id
        self.transfer(naplet, dest_urn)  # marks the departure itself
        # Success: release everything the naplet held here (paper §2.2).
        self.server.resource_manager.release(nid)
        self.server.messenger.remove_mailbox(nid, forward_to=dest_urn)
        naplet._bind_context(None)
        self.migrations_out += 1
        raise NapletDeparted(dest_urn)

    def transfer(self, naplet: "Naplet", dest_urn: str) -> None:
        """Run the LAUNCH/LANDING/transfer protocol toward *dest_urn*.

        The whole protocol is attempted under ``config.migration_retry``:
        each attempt marks the departure, ships, and rolls back cleanly on
        failure, so a retry starts from the same resident state.  All
        attempts share one transfer-id, letting the destination recognize
        a retransmission whose ack was lost and re-ack instead of landing
        a second copy.  Deterministic denials (landing/launch refused) are
        never retried — the destination already said no.
        """
        telemetry = self.server.telemetry
        nid = naplet.naplet_id
        transfer_id = f"{self.server.urn}#{next(self._transfer_seq)}"

        def _attempt() -> None:
            with telemetry.naplet_span(
                naplet, "hop", source=self.server.hostname, dest=dest_urn
            ) as hop:
                self._transfer(naplet, dest_urn, hop, transfer_id)
            telemetry.hops.inc()
            telemetry.hop_latency.observe(hop.duration)

        def _on_retry(attempt: int, wait: float, exc: BaseException) -> None:
            telemetry.migration_retries.inc()
            self.server.events.record(
                "migration-retry",
                naplet=str(nid),
                dest=dest_urn,
                attempt=attempt,
                wait=round(wait, 4),
                error=str(exc),
            )

        self.server.config.migration_retry.run(
            _attempt,
            retry_on=(NapletMigrationError,),
            give_up_on=(LandingDeniedError, LaunchDeniedError),
            on_retry=_on_retry,
        )

    def _transfer(
        self, naplet: "Naplet", dest_urn: str, hop, transfer_id: str
    ) -> None:
        nid = naplet.naplet_id
        credential = naplet.credential
        # 1. LAUNCH permission at the source (both paths).
        self.server.security.check(credential, Permission.LAUNCH)
        if self.server.config.migration_fast_path:
            if self._transfer_fast(naplet, dest_urn, hop, credential, transfer_id):
                return
            # Destination predates (or disabled) the fast path: fall back.
            self.server.telemetry.fast_path_fallbacks.inc()
            self.server.events.record(
                "fast-path-fallback", naplet=str(nid), dest=dest_urn
            )
        self._transfer_two_phase(naplet, dest_urn, hop, credential, transfer_id)

    # -- departure bookkeeping shared by both protocols ------------------- #

    def _mark_departure(
        self, naplet: "Naplet", nid: NapletID, dest_urn: str, report: bool
    ):
        """Mark the naplet in transit *before* the wire transfer.

        The directory's latest event must never run behind the synchronous
        landing, and messages arriving here during the transfer must be
        forwarded toward the destination, not deposited in a mailbox the
        naplet will never read.  Everything here is undone by
        :meth:`_rollback_departure` on failure.  ``report=False`` skips the
        directory DEPART report (fast path: the destination registers the
        combined depart+arrival instead).
        """
        was_resident = self.server.manager.is_resident(nid)
        resident_record = self.server.manager.begin_departure(nid, dest_urn)
        if report:
            self.server.directory_client.report_departure(nid, self.server.urn)
        if naplet.navigation_log.current_server() == self.server.urn:
            naplet.navigation_log.record_departure(self.server.urn)
        return was_resident, resident_record

    def _rollback_departure(
        self,
        naplet: "Naplet",
        nid: NapletID,
        was_resident: bool,
        resident_record,
        reported: bool,
    ) -> None:
        self.server.manager.abort_departure(nid, resident_record)
        if naplet.navigation_log.servers_visited() and not naplet.navigation_log.current_server():
            naplet.navigation_log.record_arrival(self.server.urn)
        if reported and was_resident:
            self.server.directory_client.report_arrival(nid, self.server.urn)

    def _transfer_frame(
        self, naplet: "Naplet", nid: NapletID, dest_urn: str, hop, payload: bytes,
        transfer_id: str, extra_headers: dict[str, str] | None = None,
        cost=None, buffers: tuple = (),
    ) -> Frame:
        image_bytes = _image_nbytes(payload, buffers)
        hop.set("bytes", image_bytes)
        self.server.telemetry.frame_bytes.inc(image_bytes, kind="naplet-transfer")
        headers = {"naplet": str(nid), "transfer-id": transfer_id}
        # The HLC stamp is minted *after* the depart event was journaled
        # (callers record it before building the frame), so the receiver's
        # clock update places every landing record causally after it.
        hlc = self.server.journal.header_stamp()
        if hlc is not None:
            headers["hlc"] = hlc
        if extra_headers:
            headers.update(extra_headers)
        if hop.span_id:
            # The landing span at the destination nests under this hop.
            ctx = naplet.trace_context
            if ctx is not None:
                headers["trace-id"] = ctx.trace_id
                headers["trace-parent"] = hop.span_id
        frame = Frame(
            kind=FrameKind.NAPLET_TRANSFER,
            source=self.server.urn,
            dest=dest_urn,
            payload=payload,
            headers=headers,
            buffers=tuple(buffers),
        )
        # Hop-cost attribution (perf plane): split this hop's wire size
        # into payload vs. header vs. shipped code, on the histogram and
        # on the hop span (the journey's bytes column reads the span).
        # Delta hops also record what stayed *off* the wire (part "saved").
        telemetry = self.server.telemetry
        header_bytes = frame.size - image_bytes
        telemetry.hop_bytes.observe(image_bytes, part="payload")
        telemetry.hop_bytes.observe(header_bytes, part="header")
        hop.set("header_bytes", header_bytes)
        if cost is not None and cost.code_bytes:
            telemetry.hop_bytes.observe(cost.code_bytes, part="code")
            hop.set("code_bytes", cost.code_bytes)
        if cost is not None and cost.delta:
            hop.set("delta", True)
            if cost.saved_bytes:
                telemetry.hop_bytes.observe(cost.saved_bytes, part="saved")
                hop.set("saved_bytes", cost.saved_bytes)
        return frame

    def _journal_hop_cost(
        self, nid: NapletID, naplet: "Naplet", dest_urn: str, frame: Frame,
        cost, fast_path: bool,
    ) -> None:
        """Flight-record this hop's cost split (category ``perf``).

        Written only after the destination acked the transfer, so every
        record describes a migration that actually happened; harvested
        journals feed ``napletperf hops`` and the per-hop cost tables.
        """
        journal = self.server.journal
        if not journal.enabled:
            return
        ctx = naplet.trace_context
        image_bytes = _image_nbytes(frame.payload, frame.buffers)
        journal.append(
            kind="hop-cost",
            category="perf",
            naplet=str(nid),
            trace_id=ctx.trace_id if ctx is not None else None,
            detail={
                "source": self.server.hostname,
                "dest": dest_urn,
                "serialize_s": round(cost.seconds, 9),
                "payload_bytes": image_bytes,
                "header_bytes": frame.size - image_bytes,
                "code_bytes": cost.code_bytes,
                "total_bytes": frame.size,
                "fast_path": fast_path,
                "delta": bool(cost.delta),
                "saved_bytes": cost.saved_bytes,
            },
        )

    # -- delta-shipping negotiation (DESIGN.md §6.7) ----------------------- #

    def _dump_plans(self, nid: str, dest_urn: str) -> deque:
        """Escalation ladder of serialization plans toward *dest_urn*.

        Most-optimistic first: a delta against the base the peer was last
        seen holding, then a full v2 image (bundling all code), then the
        legacy v1 envelope.  Every negative image ack moves down the
        ladder *within* the same transfer attempt — the migration retry
        policy never sees a delta refusal.
        """
        plans: deque = deque()
        serializer = self.server.serializer
        if serializer.delta_shipping and dest_urn not in self._v1_peers:
            base = self._peer_bases.get((nid, dest_urn))
            code = self._peer_code.get(dest_urn)
            if base is not None:
                plans.append({"base": base, "code": code})
            elif code:
                plans.append({"code": code})
            plans.append({})
        plans.append({"force_v1": True})
        return plans

    def _dump_image(self, naplet: "Naplet", plan: dict):
        """Serialize *naplet* under one plan: ``(data, buffers, cost)``."""
        if plan.get("force_v1"):
            return self.server.serializer.dumps_with_cost(naplet, force_v1=True)
        return self.server.serializer.dumps_with_cost(
            naplet, base_hint=plan.get("base"), known_code=plan.get("code")
        )

    def _note_peer_image(self, nid: str, peer_urn: str, img_hash: str) -> None:
        """Remember that *peer_urn* holds base *img_hash* for this naplet."""
        key = (nid, peer_urn)
        self._peer_bases[key] = img_hash
        self._peer_bases.move_to_end(key)
        while len(self._peer_bases) > _PEER_BASE_CAPACITY:
            self._peer_bases.popitem(last=False)

    def _forget_peer_base(self, nid: str, dest_urn: str) -> None:
        self._peer_bases.pop((nid, dest_urn), None)

    def _record_peer_ack(
        self, nid: NapletID, dest_urn: str, ack: dict, observed: str | None,
    ) -> None:
        """Fold a positive transfer ack into the per-peer delta state.

        *observed* is the base entry read when the transfer was planned.
        The naplet can land back here (writing a fresher base for this
        very peer) before this — older — ack is processed, so the base is
        only written if the entry still reads as observed (or is gone):
        a lost compare-and-swap means fresher information won the race.
        """
        base = ack.get("base")
        if isinstance(base, str):
            key = (str(nid), dest_urn)
            current = self._peer_bases.get(key)
            if current is None or current == observed:
                self._note_peer_image(str(nid), dest_urn, base)
        code = ack.get("code")
        if isinstance(code, list):
            self._peer_code[dest_urn] = set(code)

    def _escalate_plan(
        self, plans: deque, plan: dict, ack: dict, nid: NapletID, dest_urn: str,
    ) -> dict | None:
        """Pick the next plan after a negative *image* ack, or None.

        ``need_full`` (base evicted / referenced code missing at the
        destination) drops one rung; any other rejection of a v2 envelope
        jumps straight to the v1 rung and pins the peer as v1-only for
        this process.  Returns None when the ladder is exhausted (or the
        failing envelope was already v1, where resending the same bytes
        cannot help).
        """
        if plan.get("force_v1"):
            return None
        if ack.get("need_full"):
            self._forget_peer_base(str(nid), dest_urn)
            self.server.telemetry.delta_full_reships.inc()
            self.server.events.record(
                "delta-full-reship",
                naplet=str(nid),
                dest=dest_urn,
                reason=ack.get("reason"),
            )
        else:
            # Generic rejection of a v2 envelope: assume a v1-only peer.
            self._v1_peers.add(dest_urn)
            self.server.events.record(
                "delta-v1-downgrade",
                naplet=str(nid),
                dest=dest_urn,
                reason=ack.get("reason"),
            )
            while plans and not plans[0].get("force_v1"):
                plans.popleft()
        return plans.popleft() if plans else None

    # -- fast path: landing check + transfer ack in one exchange ----------- #

    def _fast_frame(
        self, naplet: "Naplet", nid: NapletID, dest_urn: str, hop,
        credential: Credential, transfer_id: str, plan: dict, dumped: tuple,
    ) -> Frame:
        """Build one fast-path transfer frame around a *dumped* image.

        v1 keeps the legacy layout — ``(credential, image)`` pickled as
        the payload — so pre-delta peers interoperate.  v2 rides the
        credential alone in the payload and the image as out-of-band
        frame segments (``xfer: 2``): envelope first, then the raw field
        buffers, none of them re-copied by a protocol-5 transport.
        """
        data, buffers, cost = dumped
        if plan.get("force_v1"):
            return self._transfer_frame(
                naplet, nid, dest_urn, hop,
                payload=pickle.dumps((credential, data)),
                transfer_id=transfer_id,
                extra_headers={"fast-path": "1"},
                cost=cost,
            )
        return self._transfer_frame(
            naplet, nid, dest_urn, hop,
            payload=pickle.dumps(credential),
            transfer_id=transfer_id,
            extra_headers={"fast-path": "1", "xfer": "2"},
            cost=cost,
            buffers=(data, *buffers),
        )

    def _transfer_fast(
        self, naplet: "Naplet", dest_urn: str, hop, credential: Credential,
        transfer_id: str,
    ) -> bool:
        """Single-round-trip migration; False when the destination lacks it."""
        nid = naplet.naplet_id
        was_resident, record = self._mark_departure(naplet, nid, dest_urn, report=False)
        if self.server.journal.enabled:
            naplet._stamp_hlc(self.server.journal.clock.now())
        observed_base = self._peer_bases.get((str(nid), dest_urn))
        plans = self._dump_plans(str(nid), dest_urn)
        plan = plans.popleft()
        data, buffers, cost = self._dump_image(naplet, plan)
        hop.set("serialize_s", cost.seconds)
        # Journal the departure *before* the frame's HLC header is minted:
        # the merged timeline must show this record ahead of the landing.
        # (Escalation resends mint fresh headers, still after this record.)
        self.server.events.record(
            "naplet-depart", naplet=str(nid), dest=dest_urn,
            bytes=_image_nbytes(data, buffers),
            fast_path=True, delta=bool(cost.delta),
        )
        frame = self._fast_frame(
            naplet, nid, dest_urn, hop, credential, transfer_id, plan,
            (data, buffers, cost),
        )

        def _rollback() -> None:
            self._rollback_departure(naplet, nid, was_resident, record, reported=False)

        while True:
            try:
                ack = pickle.loads(self.server.transport.request(frame))
            except NapletCommunicationError as exc:
                _rollback()
                raise NapletMigrationError(
                    f"transfer to {dest_urn} failed: {exc}"
                ) from exc
            if ack.get("ok") is True:
                telemetry = self.server.telemetry
                telemetry.fast_path_hops.inc()
                if cost.delta:
                    telemetry.delta_hops.inc()
                    if cost.saved_bytes:
                        telemetry.delta_saved_bytes.inc(cost.saved_bytes)
                self._record_peer_ack(nid, dest_urn, ack, observed_base)
                hop.set("fast_path", True)
                self._journal_hop_cost(nid, naplet, dest_urn, frame, cost, fast_path=True)
                # Messages that were parked here waiting for this naplet chase it.
                self.server.messenger.forward_parked(nid, dest_urn)
                return True
            if ack.get("unsupported"):
                _rollback()
                return False
            if ack.get("denied"):
                _rollback()
                self.server.events.record(
                    "landing-denied", naplet=str(nid), dest=dest_urn,
                    reason=ack.get("reason"), fast_path=True,
                )
                raise LandingDeniedError(
                    f"{dest_urn} denied landing for {nid}: {ack.get('reason', 'unknown')}"
                )
            plan = self._escalate_plan(plans, plan, ack, nid, dest_urn)
            if plan is None:
                _rollback()
                raise NapletMigrationError(
                    f"{dest_urn} rejected the transfer of {nid}: {ack.get('reason')}"
                )
            data, buffers, cost = self._dump_image(naplet, plan)
            hop.set("serialize_s", cost.seconds)
            frame = self._fast_frame(
                naplet, nid, dest_urn, hop, credential, transfer_id, plan,
                (data, buffers, cost),
            )

    # -- two-phase path: LANDING_REQUEST then NAPLET_TRANSFER -------------- #

    def _transfer_two_phase(
        self, naplet: "Naplet", dest_urn: str, hop, credential: Credential,
        transfer_id: str,
    ) -> None:
        nid = naplet.naplet_id
        # 2. LANDING permission at the destination.
        headers = {"naplet": str(nid)}
        hlc = self.server.journal.header_stamp()
        if hlc is not None:
            headers["hlc"] = hlc
        request = Frame(
            kind=FrameKind.LANDING_REQUEST,
            source=self.server.urn,
            dest=dest_urn,
            payload=pickle.dumps(credential),
            headers=headers,
        )
        try:
            reply = pickle.loads(self.server.transport.request(request))
        except NapletCommunicationError as exc:
            raise NapletMigrationError(f"cannot reach {dest_urn}: {exc}") from exc
        if not reply.get("granted", False):
            self.server.events.record(
                "landing-denied", naplet=str(nid), dest=dest_urn, reason=reply.get("reason")
            )
            raise LandingDeniedError(
                f"{dest_urn} denied landing for {nid}: {reply.get('reason', 'unknown')}"
            )
        # 3. Mark in transit, report DEPART, then ship.
        was_resident, record = self._mark_departure(naplet, nid, dest_urn, report=True)
        if self.server.journal.enabled:
            naplet._stamp_hlc(self.server.journal.clock.now())
        observed_base = self._peer_bases.get((str(nid), dest_urn))
        plans = self._dump_plans(str(nid), dest_urn)
        plan = plans.popleft()
        data, buffers, cost = self._dump_image(naplet, plan)
        hop.set("serialize_s", cost.seconds)
        # Depart is journaled before the frame's HLC header is minted, so
        # the landing sorts after it in the merged timeline.
        self.server.events.record(
            "naplet-depart", naplet=str(nid), dest=dest_urn,
            bytes=_image_nbytes(data, buffers), delta=bool(cost.delta),
        )
        frame = self._transfer_frame(
            naplet, nid, dest_urn, hop, data, transfer_id, cost=cost,
            buffers=tuple(buffers),
        )

        def _rollback() -> None:
            self._rollback_departure(naplet, nid, was_resident, record, reported=True)

        while True:
            try:
                ack = pickle.loads(self.server.transport.request(frame))
            except NapletCommunicationError as exc:
                _rollback()
                raise NapletMigrationError(
                    f"transfer to {dest_urn} failed: {exc}"
                ) from exc
            if ack.get("ok") is True:
                break
            plan = self._escalate_plan(plans, plan, ack, nid, dest_urn)
            if plan is None:
                _rollback()
                raise NapletMigrationError(
                    f"{dest_urn} rejected the transfer of {nid}: {ack.get('reason')}"
                )
            data, buffers, cost = self._dump_image(naplet, plan)
            hop.set("serialize_s", cost.seconds)
            frame = self._transfer_frame(
                naplet, nid, dest_urn, hop, data, transfer_id, cost=cost,
                buffers=tuple(buffers),
            )
        telemetry = self.server.telemetry
        if cost.delta:
            telemetry.delta_hops.inc()
            if cost.saved_bytes:
                telemetry.delta_saved_bytes.inc(cost.saved_bytes)
        self._record_peer_ack(nid, dest_urn, ack, observed_base)
        self._journal_hop_cost(nid, naplet, dest_urn, frame, cost, fast_path=False)
        # Messages that were parked here waiting for this naplet chase it.
        self.server.messenger.forward_parked(nid, dest_urn)

    # ------------------------------------------------------------------ #
    # Inbound (frame handlers)
    # ------------------------------------------------------------------ #

    def _landing_denial(self, credential: Credential) -> str | None:
        """Reason to refuse this landing, or None when it is admissible."""
        try:
            self.server.security.check(credential, Permission.LANDING)
        except Exception as exc:
            return str(exc)
        limit = self.server.config.max_residents
        if limit is not None and self.server.manager.resident_count >= limit:
            return f"server full ({limit} residents)"
        owner_limit = self.server.config.max_residents_per_owner
        if owner_limit is not None:
            owner = credential.naplet_id.owner
            if self.server.manager.resident_count_for_owner(owner) >= owner_limit:
                return f"owner {owner!r} at capacity ({owner_limit})"
        return None

    def _deny_landing(self, reason: str) -> bytes:
        self.server.telemetry.landings_denied.inc()
        return pickle.dumps({"granted": False, "reason": reason})

    def handle_landing_request(self, frame: Frame) -> bytes:
        credential: Credential = pickle.loads(frame.payload)
        reason = self._landing_denial(credential)
        if reason is not None:
            return self._deny_landing(reason)
        self.server.events.record(
            "landing-granted", naplet=str(credential.naplet_id), source=frame.source
        )
        return _GRANTED

    def _duplicate_transfer_ack(self, frame: Frame) -> bytes | None:
        """Ack a retransmitted transfer without landing a second copy.

        A retry whose previous attempt landed but whose ack was lost (the
        two-generals window) arrives with a transfer-id we have already
        landed.  Re-acking makes the retransmit idempotent; if the naplet
        still lives here we also re-report the arrival, repairing any
        directory record the source's rollback overwrote.
        """
        transfer_id = frame.headers.get("transfer-id")
        if not transfer_id:
            return None
        nid = self._landed_transfers.get(transfer_id)
        if nid is None:
            return None
        self.server.telemetry.duplicate_transfers.inc()
        self.server.events.record(
            "duplicate-transfer",
            naplet=str(nid),
            transfer_id=transfer_id,
            source=frame.source,
        )
        if self.server.manager.is_resident(nid):
            self.server.directory_client.report_arrival(nid, self.server.urn)
        return _ACK_OK

    def _remember_transfer(self, frame: Frame, nid: NapletID) -> None:
        transfer_id = frame.headers.get("transfer-id")
        if not transfer_id:
            return
        self._landed_transfers[transfer_id] = nid
        while len(self._landed_transfers) > _TRANSFER_DEDUP_CAPACITY:
            self._landed_transfers.popitem(last=False)

    def _need_full_ack(self, frame: Frame, exc: Exception) -> bytes:
        """Refuse a delta whose base (or referenced code) is missing here.

        Recoverable by protocol: the sender forgets this peer's base and
        transparently re-ships the full image within the same attempt.
        """
        self.server.events.record(
            "delta-need-full",
            naplet=frame.headers.get("naplet"),
            source=frame.source,
            reason=str(exc),
        )
        return pickle.dumps({"ok": False, "need_full": True, "reason": str(exc)})

    def _note_arrived_image(self, frame: Frame, info: dict) -> None:
        """Note that the *sender* of a landed v2 image holds it as a base.

        Its own delta cache retains what it just shipped, so a later hop
        straight back toward it (the ping-pong itinerary) can go delta
        without waiting for an ack from that side.  Must run *before*
        :meth:`receive` hands the naplet to the monitor — the naplet may
        dump for its return hop on another thread immediately.
        """
        nid, img_hash = info.get("nid"), info.get("hash")
        if (
            info.get("v") == 2
            and isinstance(nid, str)
            and isinstance(img_hash, str)
        ):
            self._note_peer_image(nid, frame.source, img_hash)

    def _landing_ack(self, info: dict) -> bytes:
        """Ack a landed transfer, advertising delta state for next time.

        A v2 landing acks the image hash now cached here (the sender
        deltas against it on its next hop this way) plus the content
        hashes of every module in the local code cache (so eager senders
        skip re-shipping bundles).
        """
        if not self.server.serializer.delta_shipping or info.get("v") != 2:
            return _ACK_OK
        ack: dict = {"ok": True, "code": self.server.code_cache.known_hashes()}
        img_hash = info.get("hash")
        if isinstance(img_hash, str):
            ack["base"] = img_hash
        return pickle.dumps(ack)

    def handle_transfer(self, frame: Frame) -> bytes:
        duplicate = self._duplicate_transfer_ack(frame)
        if duplicate is not None:
            return duplicate
        if frame.headers.get("fast-path") == "1":
            return self._handle_fast_transfer(frame)
        deserialize_started = time.perf_counter()
        try:
            naplet, info = self.server.serializer.loads_with_info(
                frame.payload, self.server.code_cache,
                buffers=frame.buffers or None,
            )
        except (DeltaBaseMissingError, ShippedCodeMissingError) as exc:
            return self._need_full_ack(frame, exc)
        except Exception as exc:
            return pickle.dumps({"ok": False, "reason": f"deserialization failed: {exc}"})
        self._note_arrived_image(frame, info)
        self.receive(
            naplet,
            arrived_from=frame.source,
            payload_bytes=_image_nbytes(frame.payload, frame.buffers),
            trace_parent=frame.headers.get("trace-parent"),
            deserialize_s=time.perf_counter() - deserialize_started,
        )
        # Remember only after the landing succeeded: a failed landing must
        # NOT dedup the retry that follows it.
        self._remember_transfer(frame, naplet.naplet_id)
        return self._landing_ack(info)

    def _handle_fast_transfer(self, frame: Frame) -> bytes:
        """Landing check + land + ack, all in one exchange.

        The credential rides ahead of the naplet image, so admission is
        decided *before* the image is deserialized — same security posture
        as the two-phase protocol, one round trip instead of two.  Layouts:
        legacy (v1) packs ``(credential, image)`` into the payload; v2
        (``xfer: 2`` header) packs only the credential there, with the
        envelope and its out-of-band field buffers as frame segments.
        """
        if not self.server.config.migration_fast_path:
            return _FAST_PATH_UNSUPPORTED
        oob: tuple = ()
        if frame.headers.get("xfer") == "2":
            if not frame.buffers:
                return pickle.dumps(
                    {"ok": False, "reason": "bad fast-path payload: no image segment"}
                )
            try:
                credential = pickle.loads(frame.payload)
            except Exception as exc:
                return pickle.dumps(
                    {"ok": False, "reason": f"bad fast-path payload: {exc}"}
                )
            image, oob = frame.buffers[0], tuple(frame.buffers[1:])
        else:
            try:
                credential, image = pickle.loads(frame.payload)
            except Exception as exc:
                return pickle.dumps(
                    {"ok": False, "reason": f"bad fast-path payload: {exc}"}
                )
        reason = self._landing_denial(credential)
        if reason is not None:
            self.server.telemetry.landings_denied.inc()
            return pickle.dumps({"ok": False, "denied": True, "reason": reason})
        self.server.events.record(
            "landing-granted",
            naplet=str(credential.naplet_id),
            source=frame.source,
            fast_path=True,
        )
        deserialize_started = time.perf_counter()
        try:
            naplet, info = self.server.serializer.loads_with_info(
                image, self.server.code_cache, buffers=oob or None
            )
        except (DeltaBaseMissingError, ShippedCodeMissingError) as exc:
            return self._need_full_ack(frame, exc)
        except Exception as exc:
            return pickle.dumps({"ok": False, "reason": f"deserialization failed: {exc}"})
        self._note_arrived_image(frame, info)
        self.receive(
            naplet,
            arrived_from=frame.source,
            payload_bytes=_image_nbytes(image, oob),
            trace_parent=frame.headers.get("trace-parent"),
            departed_from=frame.source,
            deserialize_s=time.perf_counter() - deserialize_started,
        )
        self._remember_transfer(frame, naplet.naplet_id)
        return self._landing_ack(info)

    def receive(
        self,
        naplet: "Naplet",
        arrived_from: str | None,
        payload_bytes: int = 0,
        trace_parent: str | None = None,
        departed_from: str | None = None,
        deserialize_s: float | None = None,
    ) -> None:
        """Land *naplet* at this server: register, bind, and start it.

        Shared by the wire transfer path and local revival (thaw).
        ``trace_parent`` is the source hop's span id (from the transfer
        frame headers), so the landing span nests under the hop in the
        journey tree; without one (thaw) it parents to the journey root.
        ``departed_from`` set means the fast path piggybacked the DEPART
        registration onto the transfer: this server reports the combined
        depart+arrival in one directory exchange on the source's behalf.
        """
        nid = naplet.naplet_id
        telemetry = self.server.telemetry
        # A stamp carried inside the pickle covers paths with no frame
        # headers (thaw of a persisted image); the wire path already
        # advanced the clock from the transfer frame's header.
        stamp = naplet.hlc_stamp
        if stamp is not None:
            self.server.journal.receive(stamp)
        landing_attrs = {"arrived_from": arrived_from, "bytes": payload_bytes}
        if deserialize_s is not None:
            landing_attrs["deserialize_s"] = deserialize_s
        with telemetry.naplet_span(
            naplet,
            "landing",
            parent_id=trace_parent,
            **landing_attrs,
        ):
            # Postpone execution until the arrival registration is acknowledged.
            if departed_from is not None:
                self.server.directory_client.report_migration(
                    nid, departed_from, self.server.urn
                )
            else:
                self.server.directory_client.report_arrival(nid, self.server.urn)
            self.server.manager.record_arrival(naplet, arrived_from=arrived_from)
            naplet.navigation_log.record_arrival(self.server.urn)
            self.server.messenger.create_mailbox(nid)
            self.server.locator.note_location(nid, self.server.urn)
        telemetry.landings.inc()
        telemetry.itinerary_depth.observe(len(naplet.navigation_log.servers_visited()))
        self.migrations_in += 1
        self.server.events.record(
            "naplet-arrive",
            naplet=str(nid),
            source=arrived_from,
            bytes=payload_bytes,
        )
        self._start_naplet(naplet)

    def _start_naplet(self, naplet: "Naplet") -> None:
        """Bind a fresh context and hand control to the NapletMonitor."""
        server = self.server

        def prepare(block: _ControlBlock) -> None:
            context = NapletContext(
                server_urn=server.urn,
                hostname=server.hostname,
                dispatcher=NavigatorOps(self, naplet),
                messenger=NapletMessengerProxy(server.messenger, naplet),
                services=server.resource_manager.proxy_for(naplet),
                monitor_hook=block,
                extras={"network": server.network, "tracer": server.telemetry.tracer},
            )
            naplet._bind_context(context)

        def run_body() -> None:
            naplet.on_start()

        def on_retire(
            agent: "Naplet", outcome: str, error: BaseException | None
        ) -> None:
            nid = agent.naplet_id
            if outcome == NapletOutcome.DEPARTED:
                return  # dispatch() already released everything
            server.manager.record_retirement(nid, outcome)
            server.resource_manager.release(nid)
            server.messenger.remove_mailbox(nid)
            if agent.navigation_log.current_server() == server.urn:
                agent.navigation_log.record_departure(server.urn)
            agent._bind_context(None)
            server.events.record(
                "naplet-retired",
                naplet=str(nid),
                outcome=outcome,
                error=repr(error) if error else None,
            )

        quota = server.quota_for(naplet)
        server.monitor.admit(
            naplet, run_body, on_retire, quota=quota, prepare=prepare
        )


class NavigatorOps:
    """TravelOps implementation bound to one naplet at this server."""

    def __init__(self, navigator: Navigator, naplet: "Naplet") -> None:
        self._navigator = navigator
        self._naplet = naplet

    @property
    def origin_urn(self) -> str:
        return self._navigator.server.urn

    @property
    def event_log(self):
        """Server EventLog, duck-typed for the itinerary driver's
        failover notes (a test double without one simply records nothing)."""
        return self._navigator.server.events

    def order_alt_branches(self, naplet: "Naplet", pattern) -> tuple[int, ...] | None:
        """Load-ranked Alt branch order from the server's observatory.

        Duck-typed by the itinerary driver like ``event_log``; returns
        None (static declaration order) whenever the observatory is
        dormant, load-aware navigation is off, or the space view cannot
        vouch fresh digests for every admitting candidate.
        """
        observatory = getattr(self._navigator.server, "observatory", None)
        if observatory is None:
            return None
        return observatory.order_branches(naplet, pattern, kind="alt")

    def order_par_branches(self, naplet: "Naplet", pattern) -> tuple[int, ...] | None:
        """Load-ranked Par spawn order, same ladder as the Alt hook."""
        observatory = getattr(self._navigator.server, "observatory", None)
        if observatory is None:
            return None
        return observatory.order_branches(naplet, pattern, kind="par")

    def dispatch(self, naplet: "Naplet", destination: str) -> None:
        self._navigator.dispatch(naplet, urn_of(destination))

    def spawn(self, parent: "Naplet", clone: "Naplet", destination: str) -> None:
        server = self._navigator.server
        server.security.check(parent.credential, Permission.CLONE)
        # Leave a trace at the fork origin so messages seeded with this
        # server's URN can chase the clone; transfer() marks the departure
        # (and rolls it back if the spawn fails).
        server.manager.record_arrival(clone, arrived_from=None)
        self._navigator.transfer(clone, urn_of(destination))
        server.events.record(
            "clone-spawned",
            parent=str(parent.naplet_id),
            clone=str(clone.naplet_id),
            dest=destination,
        )

    def issue_clone_credential(self, clone: "Naplet") -> None:
        server = self._navigator.server
        credential = server.authority.issue(
            clone.naplet_id, clone.codebase, clone.inherited_attributes
        )
        clone._cred = credential

    def await_join(
        self, naplet: "Naplet", tokens: set[str], timeout: float | None
    ) -> None:
        proxy = NapletMessengerProxy(self._navigator.server.messenger, naplet)
        proxy.await_join_tokens(tokens, timeout)

    def notify_join(self, naplet: "Naplet", target: NapletID, token: str) -> None:
        proxy = NapletMessengerProxy(self._navigator.server.messenger, naplet)
        proxy.post_join_notice(target, token)
