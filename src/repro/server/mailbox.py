"""Per-naplet mailboxes (paper §4.2).

A :class:`Mailbox` buffers user messages for one resident naplet; the naplet
decides when to check it.  Besides FIFO ``get``, a predicate-filtered
``get_matching`` lets the itinerary driver wait for join notices without
consuming unrelated messages — everything skipped stays in order.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable

from repro.core.errors import NapletCommunicationError
from repro.server.messages import UserMessage

__all__ = ["Mailbox"]


class Mailbox:
    """Thread-safe ordered message buffer with filtered retrieval."""

    def __init__(self) -> None:
        self._messages: deque[UserMessage] = deque()
        self._cond = threading.Condition()
        self._closed = False

    def put(self, message: UserMessage) -> None:
        with self._cond:
            if self._closed:
                raise NapletCommunicationError("mailbox is closed")
            self._messages.append(message)
            self._cond.notify_all()

    def get(self, timeout: float | None = None) -> UserMessage:
        """Oldest message; blocks up to *timeout* (None = forever)."""
        return self.get_matching(lambda _m: True, timeout)

    def get_matching(
        self,
        predicate: Callable[[UserMessage], bool],
        timeout: float | None = None,
    ) -> UserMessage:
        """Oldest message satisfying *predicate*; skipped ones stay queued."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                for index, message in enumerate(self._messages):
                    if predicate(message):
                        del self._messages[index]
                        return message
                if self._closed:
                    raise NapletCommunicationError("mailbox closed while waiting")
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise NapletCommunicationError("timed out waiting for a message")
                self._cond.wait(remaining)

    def poll(self) -> UserMessage | None:
        with self._cond:
            if self._messages:
                return self._messages.popleft()
            return None

    def drain(self) -> list[UserMessage]:
        """Remove and return everything (used when the naplet departs)."""
        with self._cond:
            messages = list(self._messages)
            self._messages.clear()
            return messages

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def __len__(self) -> int:
        with self._cond:
            return len(self._messages)
