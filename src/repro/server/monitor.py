"""NapletMonitor: confined execution and resource control (paper §5.2).

On receiving a naplet the monitor creates a *NapletThread* for it, assigns
the runtime context, and sets traps for execution exceptions.  Python has no
thread groups or priorities, so confinement is cooperative — exactly the
mechanism/policy split the paper prescribes:

- the **mechanism** is the per-naplet control block: CPU time sampled with
  ``time.thread_time`` at checkpoints, wall-clock age, message/byte counts
  reported by the messenger, pending interrupts, and a suspend gate;
- **policies** are :class:`ResourceQuota` values and the server's security
  rules; exceeding a quota raises
  :class:`~repro.core.errors.ResourceLimitExceeded` at the next checkpoint.

System messages (terminate/suspend/resume/callback) are delivered as
interrupts: the naplet's ``on_interrupt`` hook runs first (the paper leaves
the reaction to the naplet creator), then the monitor enforces the
control's built-in meaning.
"""

from __future__ import annotations

import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.core.errors import (
    NapletCompleted,
    NapletDeparted,
    NapletFrozen,
    NapletInterrupted,
    NapletTerminated,
    ResourceLimitExceeded,
)
from repro.server.messages import SystemControl
from repro.util.eventlog import EventLog

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.naplet import Naplet
    from repro.core.naplet_id import NapletID
    from repro.telemetry.exposition import ServerTelemetry

__all__ = ["ResourceQuota", "ResourceUsage", "NapletOutcome", "NapletMonitor"]


@dataclass(frozen=True)
class ResourceQuota:
    """Per-naplet consumption limits (None = unlimited)."""

    cpu_seconds: float | None = None
    wall_seconds: float | None = None
    max_messages: int | None = None
    max_message_bytes: int | None = None


@dataclass
class ResourceUsage:
    """What one naplet has consumed at this server."""

    cpu_seconds: float = 0.0
    started_at: float = field(default_factory=time.monotonic)
    messages_sent: int = 0
    message_bytes: int = 0

    @property
    def wall_seconds(self) -> float:
        return time.monotonic() - self.started_at


class NapletOutcome:
    """Terminal states of one visit."""

    DEPARTED = "departed"
    COMPLETED = "completed"
    TERMINATED = "terminated"
    FAILED = "failed"
    QUOTA = "quota-exceeded"
    FROZEN = "frozen"


class _ControlBlock:
    """Per-naplet monitor state; its checkpoint() is the context hook."""

    def __init__(self, naplet: "Naplet", quota: ResourceQuota) -> None:
        self.naplet = naplet
        self.quota = quota
        self.usage = ResourceUsage()
        self._pending: list[tuple[str, Any]] = []
        self._lock = threading.Lock()
        self._resume = threading.Event()
        self._resume.set()  # not suspended
        self._last_thread_time: float | None = None
        self.thread: threading.Thread | None = None

    # -- called from foreign threads ------------------------------------- #

    def post_interrupt(self, control: str, payload: Any) -> None:
        with self._lock:
            self._pending.append((control, payload))
        if control == SystemControl.RESUME:
            self._resume.set()

    def account_message(self, nbytes: int) -> None:
        with self._lock:
            self.usage.messages_sent += 1
            self.usage.message_bytes += nbytes

    # -- called from the naplet thread -------------------------------------- #

    def _sample_cpu(self) -> None:
        now = time.thread_time()
        if self._last_thread_time is None:
            self._last_thread_time = now
            return
        self.usage.cpu_seconds += now - self._last_thread_time
        self._last_thread_time = now

    def _check_quotas(self) -> None:
        quota = self.quota
        usage = self.usage
        if quota.cpu_seconds is not None and usage.cpu_seconds > quota.cpu_seconds:
            raise ResourceLimitExceeded("cpu", usage.cpu_seconds, quota.cpu_seconds)
        if quota.wall_seconds is not None and usage.wall_seconds > quota.wall_seconds:
            raise ResourceLimitExceeded("wall", usage.wall_seconds, quota.wall_seconds)
        if quota.max_messages is not None and usage.messages_sent > quota.max_messages:
            raise ResourceLimitExceeded("messages", usage.messages_sent, quota.max_messages)
        if (
            quota.max_message_bytes is not None
            and usage.message_bytes > quota.max_message_bytes
        ):
            raise ResourceLimitExceeded(
                "message-bytes", usage.message_bytes, quota.max_message_bytes
            )

    def checkpoint(self) -> None:
        """Cooperative trap: accounting, interrupts, suspension, quotas.

        Suspension is a polling wait so that controls arriving *while*
        suspended (terminate, further callbacks) are still honoured.
        """
        self._sample_cpu()
        while True:
            with self._lock:
                pending = self._pending.pop(0) if self._pending else None
            if pending is not None:
                control, payload = pending
                self.naplet.on_interrupt(control, payload)
                if control == SystemControl.TERMINATE:
                    raise NapletTerminated(payload)
                if control == SystemControl.FREEZE:
                    self.naplet.on_stop()
                    raise NapletFrozen(payload)
                if control == SystemControl.SUSPEND:
                    self._resume.clear()
                    self.naplet.on_stop()
                elif control == SystemControl.RESUME:
                    self._resume.set()
                continue
            if not self._resume.is_set():
                self._resume.wait(0.05)
                continue
            break
        self._check_quotas()


class NapletMonitor:
    """Creates naplet threads, tracks usage, routes interrupts."""

    def __init__(
        self,
        hostname: str,
        default_quota: ResourceQuota | None = None,
        event_log: EventLog | None = None,
        telemetry: "ServerTelemetry | None" = None,
    ) -> None:
        self.hostname = hostname
        self.default_quota = default_quota if default_quota is not None else ResourceQuota()
        # Explicit None-check: an empty EventLog is falsy (it has __len__),
        # so `or` would silently drop the server's shared log.
        self.events = event_log if event_log is not None else EventLog()
        self.telemetry = telemetry
        self._runs: dict["NapletID", _ControlBlock] = {}
        # Runs displaced from the table by a re-landing of the same naplet
        # (its previous thread is still unwinding post-departure
        # bookkeeping).  Kept so active_count/wait_idle never lose sight
        # of a live thread.
        self._draining: list[_ControlBlock] = []
        self._lock = threading.RLock()
        self.admitted = 0
        self.outcomes: dict[str, int] = {}

    # -- admission ----------------------------------------------------------- #

    def admit(
        self,
        naplet: "Naplet",
        run_body: Callable[[], None],
        on_retire: Callable[["Naplet", str, BaseException | None], None],
        quota: ResourceQuota | None = None,
        prepare: Callable[[_ControlBlock], None] | None = None,
    ) -> _ControlBlock:
        """Start *naplet* on its own thread.

        ``prepare`` runs synchronously before the thread starts (the
        Navigator binds the context there, wiring the control block's
        checkpoint in); ``run_body`` is the thread's entry; ``on_retire`` is
        invoked on the naplet thread after every outcome (including
        DEPARTED after a migration).
        """
        block = _ControlBlock(naplet, quota or self.default_quota)
        nid = naplet.naplet_id
        with self._lock:
            # A fast ping-pong itinerary can land the naplet back here
            # while the thread of its *previous* residency is still inside
            # the navigator finishing the departure (ack bookkeeping,
            # hop-cost journaling).  Park that block in the drain list so
            # it stays visible to active_count until its thread exits.
            previous = self._runs.get(nid)
            if previous is not None:
                self._draining.append(previous)
            self._runs[nid] = block
            self.admitted += 1
        if self.telemetry is not None:
            self.telemetry.admitted.inc()
        if prepare is not None:
            prepare(block)

        def _thread_main() -> None:
            outcome = NapletOutcome.COMPLETED
            error: BaseException | None = None
            try:
                block._sample_cpu()
                run_body()
            except NapletDeparted:
                outcome = NapletOutcome.DEPARTED
            except NapletCompleted:
                outcome = NapletOutcome.COMPLETED
            except NapletFrozen as exc:
                outcome, error = NapletOutcome.FROZEN, exc
            except NapletTerminated as exc:
                outcome, error = NapletOutcome.TERMINATED, exc
            except ResourceLimitExceeded as exc:
                outcome, error = NapletOutcome.QUOTA, exc
            except NapletInterrupted as exc:
                outcome, error = NapletOutcome.TERMINATED, exc
            except Exception as exc:  # the paper's "traps for execution exceptions"
                outcome, error = NapletOutcome.FAILED, exc
                self.events.record(
                    "naplet-exception",
                    naplet=str(nid),
                    error=repr(exc),
                    trace=traceback.format_exc(limit=8),
                )
            finally:
                self._finish(block, naplet, outcome, error, on_retire)

        thread = threading.Thread(
            target=_thread_main, name=f"naplet-{nid}@{self.hostname}", daemon=True
        )
        block.thread = thread
        self.events.record("naplet-admitted", naplet=str(nid))
        thread.start()
        return block

    def _finish(
        self,
        block: _ControlBlock,
        naplet: "Naplet",
        outcome: str,
        error: BaseException | None,
        on_retire: Callable[["Naplet", str, BaseException | None], None],
    ) -> None:
        nid = naplet.naplet_id
        with self._lock:
            # Pop only our own block: a re-landing may have replaced the
            # table entry with a fresh run that must stay visible.
            if self._runs.get(nid) is block:
                self._runs.pop(nid)
            else:
                try:
                    self._draining.remove(block)
                except ValueError:
                    pass
            self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1
        self.events.record("naplet-finished", naplet=str(nid), outcome=outcome)
        if self.telemetry is not None:
            self.telemetry.outcomes.inc(outcome=outcome)
            self.telemetry.cpu_seconds.inc(block.usage.cpu_seconds)
            if outcome == NapletOutcome.QUOTA:
                resource = getattr(error, "resource", "unknown")
                self.telemetry.quota_trips.inc(resource=resource)
                self.events.record(
                    "quota-trip", naplet=str(nid), resource=resource
                )
        try:
            if outcome in (
                NapletOutcome.COMPLETED,
                NapletOutcome.TERMINATED,
                NapletOutcome.FAILED,
                NapletOutcome.QUOTA,
            ):
                naplet.on_destroy()
        finally:
            on_retire(naplet, outcome, error)

    # -- control ---------------------------------------------------------------- #

    def interrupt(self, nid: "NapletID", control: str, payload: Any = None) -> bool:
        """Queue a system interrupt for a resident naplet; False if absent."""
        with self._lock:
            block = self._runs.get(nid)
        if block is None:
            return False
        block.post_interrupt(control, payload)
        self.events.record("naplet-interrupt", naplet=str(nid), control=control)
        return True

    def control_block(self, nid: "NapletID") -> _ControlBlock | None:
        with self._lock:
            return self._runs.get(nid)

    def usage_of(self, nid: "NapletID") -> ResourceUsage | None:
        block = self.control_block(nid)
        return block.usage if block is not None else None

    def usage_table(self) -> dict["NapletID", ResourceUsage]:
        """Consistent copies of every resident control block's usage.

        The health plane's sampler calls this on its cadence; copies are
        taken under each block's own lock so a concurrently checkpointing
        naplet cannot tear a reading.  CPU figures advance only at
        cooperative checkpoints — which is precisely what lets the
        watchdog spot a wedged naplet that stopped checkpointing.
        """
        with self._lock:
            blocks = dict(self._runs)
        table: dict["NapletID", ResourceUsage] = {}
        for nid, block in blocks.items():
            with block._lock:
                usage = block.usage
                table[nid] = ResourceUsage(
                    cpu_seconds=usage.cpu_seconds,
                    started_at=usage.started_at,
                    messages_sent=usage.messages_sent,
                    message_bytes=usage.message_bytes,
                )
        return table

    def resident_ids(self) -> list["NapletID"]:
        with self._lock:
            return list(self._runs)

    @property
    def active_count(self) -> int:
        with self._lock:
            return len(self._runs) + len(self._draining)

    def wait_idle(self, timeout: float = 10.0) -> bool:
        """Block until no naplet threads remain (tests/benchmarks helper)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                blocks = list(self._runs.values()) + list(self._draining)
                threads = [b.thread for b in blocks if b.thread is not None]
            if not threads:
                return True
            try:
                threads[0].join(0.01)
            except RuntimeError:
                # Registered but not yet started (admission in progress).
                time.sleep(0.01)
        return self.active_count == 0
