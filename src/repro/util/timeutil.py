"""Timestamp helpers matching the paper's compact naplet-ID encoding.

The paper (Fig. 1) encodes creation time as ``YYMMDDHHMMSS``: the naplet id
``czxu@ece:010512172720:0`` was created at 17:27:20 on May 12, 2001.  We keep
exactly that 12-digit format so reproduced identifiers render like the
figure.
"""

from __future__ import annotations

import datetime as _dt
import threading as _threading

__all__ = ["compact_timestamp", "parse_compact_timestamp", "unique_compact_timestamp"]

_FORMAT = "%y%m%d%H%M%S"


def compact_timestamp(when: _dt.datetime | None = None) -> str:
    """Render *when* (default: now, UTC) as the paper's 12-digit stamp."""
    if when is None:
        when = _dt.datetime.now(_dt.timezone.utc)
    return when.strftime(_FORMAT)


_last_issued: str | None = None
_issue_lock = _threading.Lock()


def unique_compact_timestamp(when: _dt.datetime | None = None) -> str:
    """A compact stamp guaranteed unique within this process.

    Naplet identifiers are ``owner@host:stamp:heritage`` and must be
    system-wide unique, but the paper's stamp format has one-second
    granularity — two launches in the same second would collide.  This
    allocator runs a logical clock on top of wall time: if the wall stamp
    was already issued, it hands out the successor second instead.
    """
    global _last_issued
    stamp = compact_timestamp(when)
    with _issue_lock:
        if _last_issued is not None and stamp <= _last_issued:
            bumped = parse_compact_timestamp(_last_issued) + _dt.timedelta(seconds=1)
            stamp = bumped.strftime(_FORMAT)
        _last_issued = stamp
    return stamp


def parse_compact_timestamp(stamp: str) -> _dt.datetime:
    """Parse a 12-digit ``YYMMDDHHMMSS`` stamp back into a datetime.

    Raises ``ValueError`` for malformed stamps; the returned datetime is
    naive (the paper's format carries no zone).
    """
    if len(stamp) != 12 or not stamp.isdigit():
        raise ValueError(f"not a compact YYMMDDHHMMSS timestamp: {stamp!r}")
    return _dt.datetime.strptime(stamp, _FORMAT)
