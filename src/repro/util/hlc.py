"""Hybrid logical clocks (Kulkarni et al., 2014) for cross-server causality.

Wall-clock timestamps order events *within* one server well enough, but the
flight recorder (DESIGN.md §6.5) must merge journals harvested from servers
whose clocks disagree — exactly the regime the ROADMAP's multi-process
spaces enter.  A hybrid logical clock stamps every record with

    (wall, logical, node)

where ``wall`` tracks the local physical clock but never runs backwards,
and ``logical`` breaks ties among events sharing a wall reading.  Sending
a stamp with every frame and updating the receiver's clock on arrival
guarantees *happens-before implies stamp-before*: a naplet's departure at
a fast server always sorts ahead of its landing at a slow one, no matter
how skewed the two wall clocks are.  The comparison is the plain
lexicographic order on the tuple, so merged timelines need nothing beyond
``sorted()``.

The stamp encodes to an exact, order-free string (``float.hex`` for the
wall part) so it can ride transport frame headers and naplet pickles and
round-trip without precision loss.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

__all__ = ["HLCStamp", "HybridLogicalClock", "merged"]


@dataclass(frozen=True, order=True)
class HLCStamp:
    """One hybrid-logical-clock reading; field order defines the total order."""

    wall: float
    logical: int
    node: str

    def encode(self) -> str:
        """Exact string form (frame-header safe; ``float.hex`` round-trips)."""
        return f"{self.wall.hex()}:{self.logical}:{self.node}"

    @classmethod
    def decode(cls, text: str) -> "HLCStamp":
        wall_hex, logical, node = text.split(":", 2)
        return cls(wall=float.fromhex(wall_hex), logical=int(logical), node=node)

    def describe(self) -> dict:
        return {"wall": self.wall, "logical": self.logical, "node": self.node}

    @classmethod
    def from_dict(cls, data: dict) -> "HLCStamp":
        return cls(
            wall=float(data["wall"]),
            logical=int(data["logical"]),
            node=str(data["node"]),
        )


def merged(a: HLCStamp, b: HLCStamp) -> HLCStamp:
    """The later of two stamps (associative + commutative merge)."""
    return a if a >= b else b


class HybridLogicalClock:
    """Per-server HLC: ``now()`` stamps local events, ``update()`` receives.

    ``time_source`` is injectable so tests (and the skew acceptance
    scenario) can run several servers with deliberately disagreeing wall
    clocks inside one process.
    """

    def __init__(
        self, node: str, time_source: Callable[[], float] | None = None
    ) -> None:
        self.node = node
        self._time = time_source or time.time
        self._wall = 0.0
        self._logical = 0
        self._lock = threading.Lock()

    def now(self) -> HLCStamp:
        """Stamp a local event; strictly greater than every prior stamp."""
        physical = self._time()
        with self._lock:
            if physical > self._wall:
                self._wall = physical
                self._logical = 0
            else:
                self._logical += 1
            return HLCStamp(self._wall, self._logical, self.node)

    def update(self, remote: HLCStamp) -> HLCStamp:
        """Receive *remote*; the returned stamp dominates both clocks."""
        physical = self._time()
        with self._lock:
            if physical > self._wall and physical > remote.wall:
                self._wall = physical
                self._logical = 0
            elif remote.wall > self._wall:
                self._wall = remote.wall
                self._logical = remote.logical + 1
            elif remote.wall == self._wall:
                self._logical = max(self._logical, remote.logical) + 1
            else:
                self._logical += 1
            return HLCStamp(self._wall, self._logical, self.node)

    def peek(self) -> HLCStamp:
        """Current reading without advancing the clock (diagnostics only)."""
        with self._lock:
            return HLCStamp(self._wall, self._logical, self.node)
