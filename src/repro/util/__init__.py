"""Shared utilities for the Naplet reproduction.

This package deliberately contains only dependency-free helpers that every
other subpackage may import: concurrency primitives, time formatting that
matches the paper's timestamp encoding, and a lightweight structured event
log used by servers and benchmarks.
"""

from repro.util.concurrency import (
    AtomicCounter,
    CountDownLatch,
    StoppableThread,
    wait_until,
)
from repro.util.eventlog import EventLog, EventRecord
from repro.util.hlc import HLCStamp, HybridLogicalClock, merged
from repro.util.timeutil import compact_timestamp, parse_compact_timestamp

__all__ = [
    "AtomicCounter",
    "CountDownLatch",
    "StoppableThread",
    "wait_until",
    "EventLog",
    "EventRecord",
    "HLCStamp",
    "HybridLogicalClock",
    "merged",
    "compact_timestamp",
    "parse_compact_timestamp",
]
