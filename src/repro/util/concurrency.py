"""Small concurrency primitives used across the Naplet runtime.

The Naplet runtime is thread-per-naplet (the paper's ``NapletThread``) plus a
handful of server event loops, so the primitives here are the ones that keep
that style readable: an atomic counter for id generation, a countdown latch
for barrier-style synchronisation between naplets, a stoppable daemon thread
base class, and a polling helper for tests.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

__all__ = ["AtomicCounter", "CountDownLatch", "StoppableThread", "wait_until"]


class AtomicCounter:
    """Thread-safe monotonically increasing counter."""

    def __init__(self, initial: int = 0) -> None:
        self._value = initial
        self._lock = threading.Lock()

    def next(self) -> int:
        """Increment and return the new value."""
        with self._lock:
            self._value += 1
            return self._value

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class CountDownLatch:
    """A latch that opens once :meth:`count_down` has been called *count* times."""

    def __init__(self, count: int) -> None:
        if count < 0:
            raise ValueError("latch count must be >= 0")
        self._count = count
        self._cond = threading.Condition()

    def count_down(self) -> None:
        with self._cond:
            if self._count > 0:
                self._count -= 1
                if self._count == 0:
                    self._cond.notify_all()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the latch opens. Returns ``False`` on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while self._count > 0:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._cond.wait(remaining)
            return True

    @property
    def count(self) -> int:
        with self._cond:
            return self._count


class StoppableThread(threading.Thread):
    """Daemon thread with a cooperative stop flag.

    Subclasses implement :meth:`run_loop`, which is called repeatedly until
    :meth:`stop` is requested.  The loop body is responsible for not blocking
    indefinitely (use timeouts on queue/condition waits).
    """

    def __init__(self, name: str | None = None) -> None:
        super().__init__(name=name, daemon=True)
        self._stop_event = threading.Event()

    def run(self) -> None:  # pragma: no cover - exercised via subclasses
        while not self._stop_event.is_set():
            self.run_loop()

    def run_loop(self) -> None:
        raise NotImplementedError

    def stop(self, join_timeout: float | None = 5.0) -> None:
        """Request the loop to exit and (optionally) join."""
        self._stop_event.set()
        if join_timeout is not None and self.is_alive():
            self.join(join_timeout)

    @property
    def stopping(self) -> bool:
        return self._stop_event.is_set()


def wait_until(
    predicate: Callable[[], bool],
    timeout: float = 5.0,
    interval: float = 0.002,
) -> bool:
    """Poll *predicate* until true or *timeout* elapses.

    Returns whether the predicate became true.  Used heavily by integration
    tests that wait for asynchronous agent arrivals instead of sleeping fixed
    amounts.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()
