"""Structured event log.

Server components (Navigator, Messenger, Monitor…) append :class:`EventRecord`
entries describing protocol events (LAUNCH, LANDING, ARRIVAL, DEPART, message
forwarding hops, quota trips).  Tests and benchmarks assert against these
records rather than scraping textual logs, which keeps the protocol
observable without coupling to formatting.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["EventRecord", "EventLog"]


@dataclass(frozen=True)
class EventRecord:
    """One structured event: a kind, timestamps, and free-form detail.

    ``wall`` (``time.time``) orders events against the outside world;
    ``mono`` (``time.monotonic``) measures intervals between records
    without being disturbed by clock adjustments.
    """

    kind: str
    detail: dict[str, Any] = field(default_factory=dict)
    wall: float = field(default_factory=time.time)
    mono: float = field(default_factory=time.monotonic)

    @property
    def timestamp(self) -> float:
        """Wall-clock stamp (kept for callers predating the wall/mono split)."""
        return self.wall

    def matches(self, kind: str, **detail: Any) -> bool:
        """True when this record has *kind* and every given detail item."""
        if self.kind != kind:
            return False
        return all(self.detail.get(k) == v for k, v in detail.items())


class EventLog:
    """Append-only, thread-safe list of :class:`EventRecord`.

    A bounded ``maxlen`` discards the oldest entries, mirroring the paper's
    remark that footprints of *past and current* naplets are recorded for
    management purposes without growing unboundedly.
    """

    def __init__(self, maxlen: int | None = None) -> None:
        self._records: list[EventRecord] = []
        self._lock = threading.Lock()
        self._maxlen = maxlen
        # Observer called with each appended record (outside the lock).
        # The flight recorder hooks here so every component writing to a
        # shared EventLog feeds the journal without knowing it exists.
        self.on_record: Any | None = None

    def record(self, kind: str, **detail: Any) -> EventRecord:
        rec = EventRecord(kind=kind, detail=detail)
        with self._lock:
            self._records.append(rec)
            if self._maxlen is not None and len(self._records) > self._maxlen:
                del self._records[: len(self._records) - self._maxlen]
        observer = self.on_record
        if observer is not None:
            try:
                observer(rec)
            except Exception:
                pass  # an observer failure must never break event recording
        return rec

    def snapshot(self) -> list[EventRecord]:
        with self._lock:
            return list(self._records)

    def find(self, kind: str, **detail: Any) -> list[EventRecord]:
        return [r for r in self.snapshot() if r.matches(kind, **detail)]

    def count(self, kind: str, **detail: Any) -> int:
        return len(self.find(kind, **detail))

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __iter__(self) -> Iterator[EventRecord]:
        return iter(self.snapshot())
