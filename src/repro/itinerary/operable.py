"""Post-actions (paper §3: the ``Operable`` interface).

Operables carry the itinerary-dependent control logic *T* of a visit: result
reporting, inter-agent communication, synchronisation, exception handling.
They are serializable and cloneable (they travel inside the itinerary), and
are executed by the itinerary driver in the naplet's thread, with the naplet
context bound.

Stock operables reproduce the paper's examples:

- :class:`ResultReport` — `nap.getListener().report(...)` (Example 1);
- :class:`DataComm`     — broadcast to the address book, then gather one
  message per entry (Example 2's generic collective operator);
- plus :class:`Barrier`, :class:`SetStateFlag`, :class:`ChainOperable`,
  :class:`NoOp` used by examples, tests and ablations.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.core.errors import NapletCommunicationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.naplet import Naplet

__all__ = [
    "Operable",
    "NoOp",
    "ResultReport",
    "DataComm",
    "SetStateFlag",
    "AppendNote",
    "Barrier",
    "ChainOperable",
]


class Operable(abc.ABC):
    """Serializable post-action executed after a visit."""

    @abc.abstractmethod
    def operate(self, naplet: "Naplet") -> None:
        """Perform the control logic on behalf of *naplet*."""

    def __call__(self, naplet: "Naplet") -> None:
        self.operate(naplet)


@dataclass(frozen=True)
class NoOp(Operable):
    def operate(self, naplet: "Naplet") -> None:
        return None


@dataclass(frozen=True)
class ResultReport(Operable):
    """Report a state entry (default: everything gathered) to the home listener.

    Mirrors the paper's ``ResultReport.operate`` which calls
    ``nap.getListener().report(...)``.  If ``state_key`` is None the whole
    state snapshot visible to the naplet is reported.
    """

    state_key: str | None = None

    def operate(self, naplet: "Naplet") -> None:
        if naplet.listener is None:
            return
        if self.state_key is not None:
            payload: Any = naplet.state.get(self.state_key)
        else:
            payload = {key: naplet.state.get(key) for key in naplet.state.keys()}
        naplet.report_home(payload)


@dataclass(frozen=True)
class DataComm(Operable):
    """Collective exchange with every naplet in the address book.

    Reproduces the paper's Example 2 operator: post ``message`` (default: a
    state snapshot under ``message_key``) to each address-book entry, then
    gather one message per entry into ``state[gather_key]``.  Posts that
    fail with a communication error are skipped, exactly as the paper's
    listing swallows ``NapletCommunicationException``.
    """

    message_key: str = "message"
    gather_key: str = "gathered"
    gather: bool = True
    timeout: float = 10.0

    def operate(self, naplet: "Naplet") -> None:
        context = naplet.require_context()
        book = naplet.address_book
        payload = naplet.state.get(self.message_key)
        expected = 0
        for entry in book.entries():
            if entry.naplet_id == naplet.naplet_id:
                continue
            try:
                context.messenger.post_message(entry.server_urn, entry.naplet_id, payload)
                expected += 1
            except NapletCommunicationError:
                continue
        if not self.gather:
            return
        received: list[Any] = []
        for _ in range(expected):
            try:
                message = context.messenger.get_message(timeout=self.timeout)
            except NapletCommunicationError:
                break
            received.append(message)
        naplet.state.set(self.gather_key, received)


@dataclass(frozen=True)
class SetStateFlag(Operable):
    """Set ``state[key] = value`` — drives conditional-visit guards."""

    key: str
    value: Any = True

    def operate(self, naplet: "Naplet") -> None:
        naplet.state.set(self.key, self.value)


@dataclass(frozen=True)
class AppendNote(Operable):
    """Append a marker to a list in state — used by tests to observe T-order."""

    key: str
    note: Any

    def operate(self, naplet: "Naplet") -> None:
        notes = naplet.state.get(self.key) or []
        notes = list(notes)
        notes.append(self.note)
        naplet.state.set(self.key, notes)


@dataclass(frozen=True)
class Barrier(Operable):
    """Synchronise with the sibling naplets in the address book.

    Each participant posts a token to every sibling and then waits for one
    token from each — a symmetric barrier implementing the paper's remark
    that post-actions facilitate inter-agent synchronisation.
    """

    token: str = "barrier"
    timeout: float = 30.0

    def operate(self, naplet: "Naplet") -> None:
        context = naplet.require_context()
        siblings = [
            entry
            for entry in naplet.address_book.entries()
            if entry.naplet_id != naplet.naplet_id
        ]
        for entry in siblings:
            context.messenger.post_message(
                entry.server_urn, entry.naplet_id, {"barrier": self.token}
            )
        for _ in siblings:
            context.messenger.get_message(timeout=self.timeout)


@dataclass(frozen=True)
class ChainOperable(Operable):
    """Run several operables in order."""

    actions: tuple[Operable, ...] = field(default_factory=tuple)

    def operate(self, naplet: "Naplet") -> None:
        for action in self.actions:
            action.operate(naplet)
