"""Visits and conditional visits (paper §3).

A visit is a pair ``<S; T>``: *S* is the server-specific business logic (the
naplet's ``on_start`` at that server) and *T* the itinerary-dependent control
logic (a post-action, run by the itinerary driver when the naplet calls
``travel()``).  A conditional visit ``<C -> S; T>`` adds a guard *C* that is
evaluated before dispatching to the server; a failed guard skips the visit.

Guards must be serializable — they travel inside the itinerary — so they are
small classes, not closures.  Stock guards cover the paper's motivating case
(sequential search that stops once complete) plus generic state predicates.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.naplet import Naplet
    from repro.itinerary.operable import Operable

__all__ = [
    "Guard",
    "Always",
    "Never",
    "StateFlagClear",
    "StateFlagSet",
    "StateEquals",
    "NotVisited",
    "Visit",
]


class Guard(abc.ABC):
    """Serializable predicate over the travelling naplet."""

    @abc.abstractmethod
    def admits(self, naplet: "Naplet") -> bool:
        """True when the guarded visit should be carried out."""

    def __call__(self, naplet: "Naplet") -> bool:
        return self.admits(naplet)


@dataclass(frozen=True)
class Always(Guard):
    """Unconditional visit (plain ``<S; T>``)."""

    def admits(self, naplet: "Naplet") -> bool:
        return True


@dataclass(frozen=True)
class Never(Guard):
    """Never admits; useful for disabling branches in tests/ablations."""

    def admits(self, naplet: "Naplet") -> bool:
        return False


@dataclass(frozen=True)
class StateFlagClear(Guard):
    """Admits while state[key] is falsy — the sequential-search guard.

    A search naplet sets ``state[key] = True`` on success; every subsequent
    conditional visit then skips, ending the route early (paper §3: "all
    visits except the first one should be conditional visits").
    """

    key: str

    def admits(self, naplet: "Naplet") -> bool:
        return not bool(naplet.state.get(self.key))


@dataclass(frozen=True)
class StateFlagSet(Guard):
    """Admits once state[key] is truthy (inverse of :class:`StateFlagClear`)."""

    key: str

    def admits(self, naplet: "Naplet") -> bool:
        return bool(naplet.state.get(self.key))


@dataclass(frozen=True)
class StateEquals(Guard):
    """Admits while ``state[key] == value``."""

    key: str
    value: Any

    def admits(self, naplet: "Naplet") -> bool:
        return naplet.state.get(self.key) == self.value


@dataclass(frozen=True)
class NotVisited(Guard):
    """Admits unless the naplet's navigation log already shows *server*."""

    server: str

    def admits(self, naplet: "Naplet") -> bool:
        return self.server not in naplet.navigation_log.servers_visited()


@dataclass
class Visit:
    """One (possibly conditional) stop: server, guard *C*, post-action *T*.

    ``server`` is the destination server URN or hostname; ``post_action`` is
    an :class:`~repro.itinerary.operable.Operable` run by the itinerary
    driver after the visit's business logic, before the next dispatch.
    """

    server: str
    guard: Guard = field(default_factory=Always)
    post_action: "Operable | None" = None

    @property
    def conditional(self) -> bool:
        return not isinstance(self.guard, Always)

    def admits(self, naplet: "Naplet") -> bool:
        return self.guard.admits(naplet)

    def __repr__(self) -> str:
        cond = f" if {self.guard!r}" if self.conditional else ""
        act = f" then {type(self.post_action).__name__}" if self.post_action else ""
        return f"<Visit {self.server}{cond}{act}>"
