"""Itinerary driver (paper §3).

An :class:`Itinerary` owns a pattern tree and an execution cursor (a stack of
frames), fully serializable so it travels with the naplet.  The driver
separates *what to do next* (:meth:`step`, a pure-ish cursor advance that may
fork clones) from *doing it* (:meth:`travel`, called by agent code at the end
of ``on_start``; it runs the current visit's post-action, advances, and
dispatches — unwinding the agent's frame with
:class:`~repro.core.errors.NapletDeparted` on success or
:class:`~repro.core.errors.NapletCompleted` when the journey is over).

The runtime operations an itinerary needs (dispatching, spawning clones,
join notification) are injected through the :class:`TravelOps` protocol; the
server's Navigator provides the live implementation via the naplet context.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Protocol, runtime_checkable

from repro.core.errors import (
    ItineraryError,
    NapletCompleted,
    NapletMigrationError,
)
from repro.itinerary.pattern import (
    AltPattern,
    ItineraryPattern,
    JoinPolicy,
    ParPattern,
    RepeatPattern,
    SeqPattern,
    SingletonPattern,
)
from repro.itinerary.visit import Visit

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.naplet import Naplet
    from repro.core.naplet_id import NapletID

__all__ = ["Itinerary", "TravelOps"]


@runtime_checkable
class TravelOps(Protocol):
    """Runtime services the itinerary driver needs from the hosting server."""

    def dispatch(self, naplet: "Naplet", destination: str) -> None:
        """Migrate *naplet*; raises NapletDeparted on success (in-thread)."""
        ...

    def spawn(self, parent: "Naplet", clone: "Naplet", destination: str) -> None:
        """Launch a freshly forked *clone* toward *destination*."""
        ...

    def issue_clone_credential(self, clone: "Naplet") -> None:
        """Re-sign a clone's immutable attributes under its owner."""
        ...

    def await_join(self, naplet: "Naplet", tokens: set[str], timeout: float | None) -> None:
        """Block until a join notification arrived for every token."""
        ...

    def notify_join(self, naplet: "Naplet", target: "NapletID", token: str) -> None:
        """Send a join notification to *target* (located by id)."""
        ...

    @property
    def origin_urn(self) -> str:
        """URN of the server these ops execute on."""
        ...


# ---------------------------------------------------------------------- #
# Cursor frames (serializable)
# ---------------------------------------------------------------------- #


@dataclass
class _SingleFrame:
    pattern: SingletonPattern
    done: bool = False


@dataclass
class _SeqFrame:
    pattern: SeqPattern
    index: int = 0


@dataclass
class _AltFrame:
    pattern: AltPattern
    entered: bool = False
    tried_from: int = 0
    # Load-ranked branch permutation from a duck-typed ops hook; None
    # means static declaration order (the historical behavior, and the
    # wire-compatible default for frames pickled by older servers).  With
    # an order set, ``tried_from`` indexes positions in it rather than
    # branch indices.
    order: tuple[int, ...] | None = None


@dataclass
class _ParFrame:
    pattern: ParPattern
    forked: bool = False
    expected_tokens: tuple[str, ...] = ()
    post_pending: bool = False


@dataclass
class _RepeatFrame:
    pattern: RepeatPattern
    iteration: int = 0


_Frame = _SingleFrame | _SeqFrame | _AltFrame | _ParFrame | _RepeatFrame


def _frame_for(pattern: ItineraryPattern) -> _Frame:
    if isinstance(pattern, SingletonPattern):
        return _SingleFrame(pattern)
    if isinstance(pattern, SeqPattern):
        return _SeqFrame(pattern)
    if isinstance(pattern, AltPattern):
        return _AltFrame(pattern)
    if isinstance(pattern, ParPattern):
        return _ParFrame(pattern)
    if isinstance(pattern, RepeatPattern):
        return _RepeatFrame(pattern)
    raise ItineraryError(f"unknown pattern type: {type(pattern).__name__}")


@dataclass
class _FailureRecord:
    """A dispatch failure tolerated under the 'skip' policy."""

    server: str
    error: str


class Itinerary:
    """Travel plan of one naplet: pattern tree + execution cursor.

    Parameters
    ----------
    pattern:
        Root :class:`ItineraryPattern`.  Subclasses may instead override
        :meth:`build` and call ``super().__init__(None)`` (the paper's
        ``setItineraryPattern`` style is supported through
        :meth:`set_itinerary_pattern`).
    on_failure:
        ``"abort"`` (default) re-raises dispatch failures;
        ``"skip"`` records them and continues with the next visit.
    join_timeout:
        Upper bound for Par JOIN waits.
    """

    def __init__(
        self,
        pattern: ItineraryPattern | None = None,
        on_failure: str = "abort",
        join_timeout: float | None = 30.0,
    ) -> None:
        if on_failure not in ("abort", "skip"):
            raise ItineraryError(f"on_failure must be 'abort' or 'skip', got {on_failure!r}")
        self._pattern = pattern
        self._stack: list[_Frame] = []
        self._started = False
        self._completed = False
        self._current_visit: Visit | None = None
        self._alt_pending: int | None = None  # stack index of a backtrackable Alt
        self._terminal_notice: tuple["NapletID", str] | None = None
        self._failures: list[_FailureRecord] = []
        # Times a failed dispatch fell through to the next Alt branch;
        # travels with the naplet, so the journey's report can show how
        # many mirrors were burned through.
        self.alt_failovers = 0
        self.on_failure = on_failure
        self.join_timeout = join_timeout

    # -- construction ----------------------------------------------------- #

    def set_itinerary_pattern(self, pattern: ItineraryPattern) -> None:
        """The paper's ``setItineraryPattern`` — only before travel starts."""
        if self._started:
            raise ItineraryError("cannot replace the pattern of a started itinerary")
        self._pattern = pattern

    @property
    def pattern(self) -> ItineraryPattern:
        if self._pattern is None:
            raise ItineraryError("itinerary has no pattern")
        return self._pattern

    # -- inspection -------------------------------------------------------- #

    @property
    def started(self) -> bool:
        return self._started

    @property
    def completed(self) -> bool:
        return self._completed

    @property
    def current_visit(self) -> Visit | None:
        return self._current_visit

    @property
    def failures(self) -> list[_FailureRecord]:
        return list(self._failures)

    def servers(self) -> list[str]:
        return self.pattern.servers()

    # -- cursor ------------------------------------------------------------ #

    def step(self, naplet: "Naplet", ops: TravelOps) -> str | None:
        """Advance to the next dispatchable visit; return its server.

        Handles Par forking (spawning clones through *ops*) and JOIN waits.
        Returns ``None`` once the journey is complete — at which point a
        pending terminal join-notification, if any, has been sent.
        """
        if self._completed:
            return None
        self._alt_pending = None
        if not self._started:
            self._started = True
            self._stack.append(_frame_for(self.pattern))
        while self._stack:
            frame = self._stack[-1]
            if isinstance(frame, _SingleFrame):
                if frame.done:
                    self._stack.pop()
                    continue
                frame.done = True
                visit = frame.pattern.visit
                if visit.admits(naplet):
                    self._current_visit = visit
                    return visit.server
                continue
            if isinstance(frame, _SeqFrame):
                children = frame.pattern.children
                if frame.index >= len(children):
                    self._stack.pop()
                    continue
                child = children[frame.index]
                frame.index += 1
                self._stack.append(_frame_for(child))
                continue
            if isinstance(frame, _AltFrame):
                if frame.entered:
                    self._stack.pop()
                    continue
                chosen = self._select_alt(naplet, ops, frame)
                if chosen is None:
                    self._stack.pop()
                    continue
                frame.entered = True
                self._alt_pending = len(self._stack) - 1
                self._stack.append(_frame_for(frame.pattern.children[chosen]))
                continue
            if isinstance(frame, _ParFrame):
                if not frame.forked:
                    frame.forked = True
                    frame.expected_tokens = self._fork(naplet, frame.pattern, ops)
                    frame.post_pending = frame.pattern.post_action is not None
                    if frame.pattern.join is not JoinPolicy.JOIN and frame.post_pending:
                        frame.pattern.post_action.operate(naplet)  # type: ignore[union-attr]
                        frame.post_pending = False
                    self._stack.append(_frame_for(frame.pattern.children[0]))
                    continue
                # original finished its own branch: join, then continue past Par
                if frame.pattern.join is JoinPolicy.JOIN and frame.expected_tokens:
                    ops.await_join(naplet, set(frame.expected_tokens), self.join_timeout)
                    frame.expected_tokens = ()
                if frame.post_pending:
                    frame.pattern.post_action.operate(naplet)  # type: ignore[union-attr]
                    frame.post_pending = False
                self._stack.pop()
                continue
            if isinstance(frame, _RepeatFrame):
                if frame.iteration >= frame.pattern.times:
                    self._stack.pop()
                    continue
                frame.iteration += 1
                self._stack.append(_frame_for(frame.pattern.child))
                continue
            raise ItineraryError(f"corrupt cursor frame: {frame!r}")
        self._completed = True
        self._current_visit = None
        if self._terminal_notice is not None:
            target, token = self._terminal_notice
            self._terminal_notice = None
            ops.notify_join(naplet, target, token)
        return None

    def _select_alt(
        self, naplet: "Naplet", ops: TravelOps, frame: _AltFrame
    ) -> int | None:
        """Pick the next Alt branch to try; advances ``frame.tried_from``.

        On first entry a duck-typed ``order_alt_branches`` hook on *ops*
        may supply a full branch permutation (least-loaded first, from the
        server's space view).  Without a hook, or when it declines (empty
        or stale view) or raises, selection is exactly the historical
        static path through ``pattern.select`` — byte-identical behavior,
        which the load-aware property tests pin down.  Backtracking after
        a failed dispatch resumes from ``tried_from`` either way, so a
        burned branch is never retried within one entry sequence.
        """
        if frame.order is None and frame.tried_from == 0:
            hook = getattr(ops, "order_alt_branches", None)
            if hook is not None:
                try:
                    order = hook(naplet, frame.pattern)
                except Exception:
                    order = None
                if order is not None:
                    frame.order = tuple(order)
        if frame.order is None:
            chosen = frame.pattern.select(naplet, start=frame.tried_from)
            if chosen is None:
                return None
            frame.tried_from = chosen + 1
            return chosen
        for position in range(frame.tried_from, len(frame.order)):
            branch = frame.order[position]
            if 0 <= branch < len(frame.pattern.children) and (
                frame.pattern.children[branch].first_admitting_visit(naplet)
                is not None
            ):
                frame.tried_from = position + 1
                return branch
        return None

    # -- forking ------------------------------------------------------------ #

    def _fork(self, naplet: "Naplet", pattern: ParPattern, ops: TravelOps) -> tuple[str, ...]:
        """Spawn one clone per non-first branch; returns JOIN tokens expected."""
        from repro.core.address_book import AddressEntry

        clones: list["Naplet"] = []
        clone_by_branch: dict[int, "Naplet"] = {}
        tokens: list[str] = []
        # Clones are always *created* in branch order — ids, credentials
        # and JOIN tokens stay deterministic — even when the spawn loop
        # below dispatches them in a load-ranked order.
        for branch_index in range(1, len(pattern.children)):
            branch = pattern.children[branch_index]
            clone = naplet.clone()
            ops.issue_clone_credential(clone)
            clone_itin = self._itinerary_for_clone(clone, branch_index, branch, pattern.join)
            if pattern.join is JoinPolicy.JOIN:
                token = str(clone.naplet_id)
                clone_itin._terminal_notice = (naplet.naplet_id, token)
                tokens.append(token)
            clone.set_itinerary(clone_itin)
            clones.append(clone)
            clone_by_branch[branch_index] = clone
        # Siblings (original included) learn each other's ids, seeded with
        # the forking server as initial location — stale by design, the
        # Locator traces from there.
        origin = ops.origin_urn
        family = [naplet, *clones]
        for member in family:
            for other in family:
                if other is not member:
                    member.address_book.add(
                        AddressEntry(naplet_id=other.naplet_id, server_urn=origin)
                    )
        # Duck-typed like the Alt hook: ops may rank the Par branches by
        # load so the least-loaded destinations receive their clones
        # first.  The hook returns a full branch permutation; branch 0 is
        # the original's and is filtered out here.  Declining, raising, or
        # absent hooks leave the historical branch-index order.
        spawn_branches = list(range(1, len(pattern.children)))
        hook = getattr(ops, "order_par_branches", None)
        if hook is not None:
            try:
                ranked = hook(naplet, pattern)
            except Exception:
                ranked = None
            if ranked is not None:
                ordered = [b for b in ranked if b in clone_by_branch]
                if sorted(ordered) == spawn_branches:
                    spawn_branches = ordered
        for branch_index in spawn_branches:
            clone = clone_by_branch[branch_index]
            destination = clone.itinerary.step(clone, ops)
            if destination is None:
                continue  # degenerate branch: nothing admitted; token already notified
            ops.spawn(naplet, clone, destination)
        return tuple(tokens)

    def _itinerary_for_clone(
        self,
        clone: "Naplet",
        branch_index: int,
        branch: ItineraryPattern,
        join: JoinPolicy,
    ) -> "Itinerary":
        """Build the clone's itinerary according to the join policy.

        ``CONTINUE_ALL`` grafts the branch in place of the Par frame on a
        copy of this cursor so the clone also performs the continuation;
        the other policies give the clone just its branch.
        """
        if join is JoinPolicy.CONTINUE_ALL:
            # clone.itinerary is already a deep copy of self (clone() copies
            # the whole naplet); swap its top Par frame for the clone's copy
            # of the branch, located by position in the copied Par node.
            grafted = clone.itinerary
            if not isinstance(grafted, Itinerary) or not grafted._stack:
                raise ItineraryError("clone cursor out of sync during CONTINUE_ALL fork")
            top = grafted._stack[-1]
            if not isinstance(top, _ParFrame):
                raise ItineraryError("expected a Par frame on top of the clone cursor")
            branch_copy = top.pattern.children[branch_index]
            grafted._stack[-1] = _frame_for(branch_copy)
            grafted._current_visit = None
            return grafted
        fresh = Itinerary(
            pattern=branch,
            on_failure=self.on_failure,
            join_timeout=self.join_timeout,
        )
        return fresh

    # -- travelling ----------------------------------------------------------- #

    def travel(self, naplet: "Naplet") -> None:
        """Run the current post-action, advance, dispatch (paper's travel()).

        Called from agent code (typically the tail of ``on_start``).  Does
        not return normally: raises ``NapletDeparted`` after a successful
        dispatch or ``NapletCompleted`` when the journey is over.
        """
        context = naplet.require_context()
        ops: TravelOps = context.dispatcher  # type: ignore[assignment]
        if self._current_visit is not None and self._current_visit.post_action is not None:
            visit = self._current_visit
            # Duck-typed tracer from the context extras: the itinerary layer
            # stays free of telemetry imports, and untraced naplets skip it.
            tracer = context.extra("tracer")
            ctx = naplet.trace_context
            if tracer is not None and ctx is not None:
                with tracer.span(
                    "post-action", ctx, naplet=str(naplet.naplet_id), visit=visit.server
                ):
                    visit.post_action.operate(naplet)
            else:
                visit.post_action.operate(naplet)
        self._current_visit = None
        while True:
            destination = self.step(naplet, ops)
            if destination is None:
                raise NapletCompleted()
            try:
                ops.dispatch(naplet, destination)
                raise ItineraryError(
                    "TravelOps.dispatch returned without raising NapletDeparted"
                )
            except NapletMigrationError as exc:
                self._failures.append(_FailureRecord(server=destination, error=str(exc)))
                if self._try_alt_backtrack():
                    self._note_failover(naplet, ops, destination, exc)
                    continue
                if self.on_failure == "skip":
                    continue
                raise

    def first_destination(self, naplet: "Naplet", ops: TravelOps) -> str | None:
        """Launch-time entry: advance to the first visit (forking if needed)."""
        if self._started:
            raise ItineraryError("itinerary already started")
        return self.step(naplet, ops)

    def launch_with(
        self,
        naplet: "Naplet",
        ops: TravelOps,
        transfer: Callable[[str], None],
    ) -> bool:
        """Launch-time travel loop: same Alt-backtrack / skip semantics as
        :meth:`travel`, but *transfer* sends the naplet without unwinding a
        thread (there is no naplet thread yet at the home side).

        Returns True once a transfer succeeded, False when the journey
        completed without any dispatch (degenerate itinerary).
        """
        while True:
            destination = self.step(naplet, ops)
            if destination is None:
                return False
            try:
                transfer(destination)
                return True
            except NapletMigrationError as exc:
                self._failures.append(_FailureRecord(server=destination, error=str(exc)))
                if self._try_alt_backtrack():
                    self._note_failover(naplet, ops, destination, exc)
                    continue
                if self.on_failure == "skip":
                    continue
                raise

    def _note_failover(
        self, naplet: "Naplet", ops: TravelOps, destination: str, exc: BaseException
    ) -> None:
        """Record a burned Alt mirror on the hosting server's event log.

        Duck-typed like the tracer in :meth:`travel`: the itinerary layer
        stays free of telemetry imports, and ops doubles without an
        ``event_log`` simply record nothing.
        """
        events = getattr(ops, "event_log", None)
        if events is None:
            return
        try:
            naplet_key = str(naplet.naplet_id) if naplet.has_id else naplet.name
        except Exception:  # pragma: no cover - defensive
            naplet_key = naplet.name
        events.record(
            "alt-failover",
            naplet=naplet_key,
            failed=destination,
            failovers=self.alt_failovers,
            error=str(exc),
        )

    def _try_alt_backtrack(self) -> bool:
        """After a failed dispatch, fall back to the next Alt branch if possible."""
        if self._alt_pending is None or self._alt_pending >= len(self._stack):
            return False
        frame = self._stack[self._alt_pending]
        if not isinstance(frame, _AltFrame):
            return False
        del self._stack[self._alt_pending + 1 :]
        frame.entered = False
        self._alt_pending = None
        self._current_visit = None
        self.alt_failovers += 1
        return True

    # -- misc -------------------------------------------------------------------- #

    def __repr__(self) -> str:
        status = "completed" if self._completed else ("started" if self._started else "fresh")
        try:
            pat = repr(self._pattern)
        except Exception:  # pragma: no cover - defensive
            pat = "<?>"
        return f"<Itinerary {status} {pat}>"


