"""Structured itinerary mechanism (paper §3).

Itineraries are first-class, serializable travel plans separated from agent
business logic, recursively composed from ``Singleton``, ``Seq``, ``Alt``
and ``Par`` patterns over (conditional) visits, with per-visit post-actions.
"""

from repro.itinerary.dsl import parse, render
from repro.itinerary.itinerary import Itinerary, TravelOps
from repro.itinerary.operable import (
    AppendNote,
    Barrier,
    ChainOperable,
    DataComm,
    NoOp,
    Operable,
    ResultReport,
    SetStateFlag,
)
from repro.itinerary.pattern import (
    AltPattern,
    ItineraryPattern,
    JoinPolicy,
    ParPattern,
    RepeatPattern,
    SeqPattern,
    SingletonPattern,
    alt,
    par,
    repeat,
    seq,
    singleton,
)
from repro.itinerary.visit import (
    Always,
    Guard,
    Never,
    NotVisited,
    StateEquals,
    StateFlagClear,
    StateFlagSet,
    Visit,
)

__all__ = [
    "Itinerary",
    "TravelOps",
    "ItineraryPattern",
    "SingletonPattern",
    "SeqPattern",
    "AltPattern",
    "ParPattern",
    "JoinPolicy",
    "seq",
    "alt",
    "par",
    "singleton",
    "repeat",
    "RepeatPattern",
    "parse",
    "render",
    "Visit",
    "Guard",
    "Always",
    "Never",
    "NotVisited",
    "StateEquals",
    "StateFlagClear",
    "StateFlagSet",
    "Operable",
    "NoOp",
    "ResultReport",
    "DataComm",
    "SetStateFlag",
    "AppendNote",
    "Barrier",
    "ChainOperable",
]
