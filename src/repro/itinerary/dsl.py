"""Textual itinerary DSL (extension beyond the paper; flagged in DESIGN.md).

A compact front-end for the §3 algebra, convenient in examples, tests and
benchmark sweeps::

    parse("par(seq(s0, s1), seq(s2, s3))")
    parse("seq(a, b?, c?)")         # '?'-suffixed visits are conditional on
                                    # the default search flag being clear
    parse("alt(mirror1, mirror2)")

Grammar (whitespace-insensitive)::

    pattern  := combinator | visit
    combinator := ("seq" | "alt" | "par") "(" pattern ("," pattern)* ")"
    visit    := NAME "?"?
    NAME     := [A-Za-z0-9_.:/-]+

``?`` attaches a :class:`~repro.itinerary.visit.StateFlagClear` guard on the
key given by ``guard_key`` (default ``"done"``) — the paper's sequential-
search shape ("all visits except the first one should be conditional").
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.core.errors import ItineraryError
from repro.itinerary.pattern import (
    AltPattern,
    ItineraryPattern,
    JoinPolicy,
    ParPattern,
    RepeatPattern,
    SeqPattern,
    SingletonPattern,
)
from repro.itinerary.visit import Always, StateFlagClear

__all__ = ["parse", "render"]

_TOKEN_RE = re.compile(r"\s*(?:(?P<lparen>\()|(?P<rparen>\))|(?P<comma>,)|(?P<name>[A-Za-z0-9_.:/-]+\??))")

_COMBINATORS = ("seq", "alt", "par", "repeat")


@dataclass
class _Token:
    kind: str
    text: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            if text[pos:].strip() == "":
                break
            raise ItineraryError(f"itinerary DSL: unexpected character at {pos}: {text[pos]!r}")
        pos = match.end()
        for kind in ("lparen", "rparen", "comma", "name"):
            if match.group(kind) is not None:
                tokens.append(_Token(kind=kind, text=match.group(kind), position=match.start()))
                break
    return tokens


class _Parser:
    def __init__(self, tokens: list[_Token], source: str, guard_key: str, join: JoinPolicy) -> None:
        self._tokens = tokens
        self._source = source
        self._index = 0
        self._guard_key = guard_key
        self._join = join

    def _peek(self) -> _Token | None:
        return self._tokens[self._index] if self._index < len(self._tokens) else None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ItineraryError(f"itinerary DSL: unexpected end of input in {self._source!r}")
        self._index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._next()
        if token.kind != kind:
            raise ItineraryError(
                f"itinerary DSL: expected {kind} at {token.position}, got {token.text!r}"
            )
        return token

    def parse(self) -> ItineraryPattern:
        pattern = self._pattern()
        leftover = self._peek()
        if leftover is not None:
            raise ItineraryError(
                f"itinerary DSL: trailing input at {leftover.position}: {leftover.text!r}"
            )
        return pattern

    def _pattern(self) -> ItineraryPattern:
        token = self._next()
        if token.kind != "name":
            raise ItineraryError(
                f"itinerary DSL: expected a name at {token.position}, got {token.text!r}"
            )
        name = token.text
        nxt = self._peek()
        if name in _COMBINATORS and nxt is not None and nxt.kind == "lparen":
            return self._combinator(name)
        return self._visit(name)

    def _combinator(self, which: str) -> ItineraryPattern:
        self._expect("lparen")
        if which == "repeat":
            child = self._pattern()
            self._expect("comma")
            count_token = self._expect("name")
            if not count_token.text.isdigit():
                raise ItineraryError(
                    f"itinerary DSL: repeat count must be an integer at "
                    f"{count_token.position}, got {count_token.text!r}"
                )
            self._expect("rparen")
            return RepeatPattern(child, int(count_token.text))
        children = [self._pattern()]
        while True:
            token = self._next()
            if token.kind == "rparen":
                break
            if token.kind != "comma":
                raise ItineraryError(
                    f"itinerary DSL: expected ',' or ')' at {token.position}, got {token.text!r}"
                )
            children.append(self._pattern())
        if which == "seq":
            return SeqPattern(children)
        if which == "alt":
            return AltPattern(children)
        return ParPattern(children, join=self._join)

    def _visit(self, name: str) -> SingletonPattern:
        if name.endswith("?"):
            server = name[:-1]
            if not server:
                raise ItineraryError("itinerary DSL: '?' needs a server name")
            return SingletonPattern.to(server, guard=StateFlagClear(self._guard_key))
        return SingletonPattern.to(name)


def parse(
    text: str,
    guard_key: str = "done",
    join: JoinPolicy = JoinPolicy.TERMINATE,
) -> ItineraryPattern:
    """Parse DSL *text* into a pattern tree.

    ``guard_key`` is the state flag consulted by ``?``-guarded visits;
    ``join`` is applied to every ``par(...)`` node.
    """
    tokens = _tokenize(text)
    if not tokens:
        raise ItineraryError("itinerary DSL: empty input")
    return _Parser(tokens, text, guard_key, join).parse()


def render(pattern: ItineraryPattern, guard_key: str = "done") -> str:
    """Render a pattern tree back into DSL text (inverse of :func:`parse`).

    Only the DSL-expressible subset renders: visits with no post-action,
    unguarded or guarded by ``StateFlagClear(guard_key)``.  Anything else
    raises so callers never get silently lossy output.
    """
    if isinstance(pattern, SingletonPattern):
        visit = pattern.visit
        if visit.post_action is not None:
            raise ItineraryError("DSL cannot express per-visit post-actions")
        if isinstance(visit.guard, Always):
            return visit.server
        if visit.guard == StateFlagClear(guard_key):
            return f"{visit.server}?"
        raise ItineraryError(f"DSL cannot express guard {visit.guard!r}")
    if isinstance(pattern, SeqPattern):
        return f"seq({', '.join(render(c, guard_key) for c in pattern.children)})"
    if isinstance(pattern, AltPattern):
        return f"alt({', '.join(render(c, guard_key) for c in pattern.children)})"
    if isinstance(pattern, ParPattern):
        if pattern.post_action is not None:
            raise ItineraryError("DSL cannot express Par post-actions")
        return f"par({', '.join(render(c, guard_key) for c in pattern.children)})"
    if isinstance(pattern, RepeatPattern):
        return f"repeat({render(pattern.child, guard_key)}, {pattern.times})"
    raise ItineraryError(f"DSL cannot express {type(pattern).__name__}")
