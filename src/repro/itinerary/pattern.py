"""Recursive itinerary patterns (paper §3).

The BNF from the paper::

    <Visit V>            ::= <S> | <S; T> | <C -> S; T>
    <ItineraryPattern P> ::= Singleton(V) | Seq(P, P) | Alt(P, P) | Par(P, P)

We generalise the binary ``Seq/Alt/Par`` to n-ary (the paper's own examples
construct n-ary instances: ``new SeqPattern(servers, act)``,
``new ParPattern(_ip, act)``), which is equivalent to the nested binary form.

Semantics implemented (documented design decisions where the paper leaves
freedom):

- ``Seq(P1..Pn)``  — carry out P1 … Pn in order; guarded visits that do not
  admit the naplet are skipped.
- ``Alt(P1..Pn)``  — carried out *by one naplet*: the first branch whose
  first reachable visit admits the naplet is taken; if its very first
  dispatch fails with a migration error the driver backtracks and tries the
  next branch.
- ``Par(P1..Pn)``  — fork: the naplet itself carries out P1 while clones
  (heritage-extended ids) carry out P2 … Pn, in parallel.  The
  :class:`JoinPolicy` governs what happens at branch ends:

  * ``TERMINATE`` (default) — clones retire when their branch ends; the
    original continues with whatever follows the Par node.  This matches
    the paper's MAN example where spawned children report individually.
  * ``CONTINUE_ALL`` — every branch continues with the continuation of the
    Par node (broadcast of the rest of the journey).
  * ``JOIN`` — clones notify the original at branch end and retire; the
    original blocks at the Par node until all notifications arrive, then
    continues.  Exercises location-independent messaging.

- A pattern-level post-action on Seq/Singleton attaches to the *last* visit
  of the pattern (Example 1 reports "after the last visit"); on Par it runs
  on the original at the join point (or right after forking when there is
  no join).
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Sequence

from repro.core.errors import ItineraryError
from repro.itinerary.visit import Guard, Visit

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.naplet import Naplet
    from repro.itinerary.operable import Operable

__all__ = [
    "ItineraryPattern",
    "SingletonPattern",
    "SeqPattern",
    "AltPattern",
    "ParPattern",
    "RepeatPattern",
    "JoinPolicy",
    "seq",
    "alt",
    "par",
    "singleton",
    "repeat",
]


class JoinPolicy(enum.Enum):
    """What happens at the end of Par branches (see module docstring)."""

    TERMINATE = "terminate"
    CONTINUE_ALL = "continue_all"
    JOIN = "join"


class ItineraryPattern(abc.ABC):
    """Base class of the recursive journey-routing patterns."""

    @abc.abstractmethod
    def visits(self) -> Iterator[Visit]:
        """Yield every visit in the pattern (pre-order), for inspection."""

    @abc.abstractmethod
    def first_admitting_visit(self, naplet: "Naplet") -> Visit | None:
        """The first visit this pattern would perform for *naplet*, or None.

        Used by Alt selection; for Par the first visit of the original's
        branch is used.
        """

    def servers(self) -> list[str]:
        """All server names mentioned, in pre-order (with duplicates)."""
        return [v.server for v in self.visits()]

    def visit_count(self) -> int:
        return sum(1 for _ in self.visits())


@dataclass
class SingletonPattern(ItineraryPattern):
    """Base case: a single (conditional) visit."""

    visit: Visit

    @classmethod
    def to(
        cls,
        server: str,
        post_action: "Operable | None" = None,
        guard: Guard | None = None,
    ) -> "SingletonPattern":
        kwargs = {} if guard is None else {"guard": guard}
        return cls(Visit(server=server, post_action=post_action, **kwargs))

    def visits(self) -> Iterator[Visit]:
        yield self.visit

    def first_admitting_visit(self, naplet: "Naplet") -> Visit | None:
        return self.visit if self.visit.admits(naplet) else None

    def __repr__(self) -> str:
        return f"Singleton({self.visit!r})"


@dataclass
class SeqPattern(ItineraryPattern):
    """Visit sub-patterns in order."""

    children: tuple[ItineraryPattern, ...]

    def __init__(self, children: Sequence[ItineraryPattern]) -> None:
        children = tuple(children)
        if not children:
            raise ItineraryError("SeqPattern needs at least one child")
        self.children = children

    @classmethod
    def of_servers(
        cls,
        servers: Sequence[str],
        post_action: "Operable | None" = None,
        per_visit_action: "Operable | None" = None,
        guard: Guard | None = None,
        guard_first: bool = False,
    ) -> "SeqPattern":
        """The paper's ``new SeqPattern(servers, act)`` constructor.

        *post_action* attaches to the **last** visit (Example 1: results
        reported back after the last visit); *per_visit_action* to every
        visit; *guard* makes visits conditional — by default all visits
        except the first (the sequential-search shape from §3), or all of
        them when ``guard_first`` is set.
        """
        if not servers:
            raise ItineraryError("of_servers needs at least one server")
        singles: list[SingletonPattern] = []
        last = len(servers) - 1
        for i, server in enumerate(servers):
            action: "Operable | None" = per_visit_action
            if i == last and post_action is not None:
                action = _combine(per_visit_action, post_action)
            use_guard = guard if (guard is not None and (i > 0 or guard_first)) else None
            singles.append(SingletonPattern.to(server, post_action=action, guard=use_guard))
        return cls(singles)

    def visits(self) -> Iterator[Visit]:
        for child in self.children:
            yield from child.visits()

    def first_admitting_visit(self, naplet: "Naplet") -> Visit | None:
        for child in self.children:
            found = child.first_admitting_visit(naplet)
            if found is not None:
                return found
        return None

    def __repr__(self) -> str:
        return f"Seq({', '.join(map(repr, self.children))})"


@dataclass
class AltPattern(ItineraryPattern):
    """Carry out exactly one of the alternative sub-patterns."""

    children: tuple[ItineraryPattern, ...]

    def __init__(self, children: Sequence[ItineraryPattern]) -> None:
        children = tuple(children)
        if not children:
            raise ItineraryError("AltPattern needs at least one child")
        self.children = children

    def select(self, naplet: "Naplet", start: int = 0) -> int | None:
        """Index of the first branch (from *start*) admitting *naplet*."""
        for i in range(start, len(self.children)):
            if self.children[i].first_admitting_visit(naplet) is not None:
                return i
        return None

    def visits(self) -> Iterator[Visit]:
        for child in self.children:
            yield from child.visits()

    def first_admitting_visit(self, naplet: "Naplet") -> Visit | None:
        chosen = self.select(naplet)
        if chosen is None:
            return None
        return self.children[chosen].first_admitting_visit(naplet)

    def __repr__(self) -> str:
        return f"Alt({', '.join(map(repr, self.children))})"


@dataclass
class ParPattern(ItineraryPattern):
    """Carry out all sub-patterns in parallel: original + clones."""

    children: tuple[ItineraryPattern, ...]
    post_action: "Operable | None" = None
    join: JoinPolicy = JoinPolicy.TERMINATE

    def __init__(
        self,
        children: Sequence[ItineraryPattern],
        post_action: "Operable | None" = None,
        join: JoinPolicy = JoinPolicy.TERMINATE,
    ) -> None:
        children = tuple(children)
        if not children:
            raise ItineraryError("ParPattern needs at least one child")
        self.children = children
        self.post_action = post_action
        self.join = join

    @classmethod
    def of_servers(
        cls,
        servers: Sequence[str],
        per_branch_action: "Operable | None" = None,
        post_action: "Operable | None" = None,
        join: JoinPolicy = JoinPolicy.TERMINATE,
    ) -> "ParPattern":
        """Example 2's broadcast shape: one singleton branch per server."""
        branches = [SingletonPattern.to(server, post_action=per_branch_action) for server in servers]
        return cls(branches, post_action=post_action, join=join)

    def visits(self) -> Iterator[Visit]:
        for child in self.children:
            yield from child.visits()

    def first_admitting_visit(self, naplet: "Naplet") -> Visit | None:
        return self.children[0].first_admitting_visit(naplet)

    def __repr__(self) -> str:
        return f"Par({', '.join(map(repr, self.children))}, join={self.join.value})"


@dataclass
class RepeatPattern(ItineraryPattern):
    """Carry out the sub-pattern *times* times in sequence.

    **Extension beyond the paper's BNF** (flagged in DESIGN.md): the
    periodic-monitoring workloads of §6 naturally want "tour the devices
    every round, M rounds"; ``Repeat(Seq(...), M)`` expresses that without
    unrolling the tree.  Guards are re-evaluated on every round, so a
    conditional tour can still stop early.
    """

    child: ItineraryPattern
    times: int

    def __init__(self, child: ItineraryPattern, times: int) -> None:
        if times < 1:
            raise ItineraryError(f"RepeatPattern needs times >= 1, got {times}")
        self.child = child
        self.times = times

    def visits(self) -> Iterator[Visit]:
        for _round in range(self.times):
            yield from self.child.visits()

    def first_admitting_visit(self, naplet: "Naplet") -> Visit | None:
        return self.child.first_admitting_visit(naplet)

    def __repr__(self) -> str:
        return f"Repeat({self.child!r}, {self.times})"


def repeat(part: "ItineraryPattern | str | Visit", times: int) -> RepeatPattern:
    """``repeat(P, n)`` — P carried out n times in sequence (extension)."""
    return RepeatPattern(_as_pattern(part), times)


def _combine(first: "Operable | None", second: "Operable | None") -> "Operable | None":
    from repro.itinerary.operable import ChainOperable

    if first is None:
        return second
    if second is None:
        return first
    return ChainOperable((first, second))


# ---------------------------------------------------------------------- #
# Functional constructors matching the paper's seq/alt/par operators
# ---------------------------------------------------------------------- #


def _as_pattern(value: "ItineraryPattern | str | Visit") -> ItineraryPattern:
    if isinstance(value, ItineraryPattern):
        return value
    if isinstance(value, Visit):
        return SingletonPattern(value)
    if isinstance(value, str):
        return SingletonPattern.to(value)
    raise ItineraryError(f"cannot build a pattern from {value!r}")


def singleton(
    server: str,
    post_action: "Operable | None" = None,
    guard: Guard | None = None,
) -> SingletonPattern:
    """``Singleton(V)``."""
    return SingletonPattern.to(server, post_action=post_action, guard=guard)


def seq(*parts: "ItineraryPattern | str | Visit") -> SeqPattern:
    """``seq(P, Q, …)`` — visit of P followed by visit of Q …"""
    return SeqPattern([_as_pattern(p) for p in parts])


def alt(*parts: "ItineraryPattern | str | Visit") -> AltPattern:
    """``alt(P, Q, …)`` — exactly one alternative is carried out."""
    return AltPattern([_as_pattern(p) for p in parts])


def par(
    *parts: "ItineraryPattern | str | Visit",
    post_action: "Operable | None" = None,
    join: JoinPolicy = JoinPolicy.TERMINATE,
) -> ParPattern:
    """``par(P, Q, …)`` — P by the naplet, Q … by its clones, in parallel."""
    return ParPattern([_as_pattern(p) for p in parts], post_action=post_action, join=join)
