"""Best-effort restricted execution of shipped agent code.

The paper relies on the JVM's class loader and JDK security manager for
confinement.  CPython offers no equivalent boundary, so — as DESIGN.md
documents — this loader is a *best-effort* confinement, not a security
boundary (the paper itself notes "no special security managers and class
loaders have actually been implemented" in its release).

Shipped source executes in a fresh module namespace whose builtins exclude
process-control and filesystem primitives, and whose ``__import__`` only
admits an allowlist of module prefixes (the framework itself, stdlib data
helpers, and the math stack agents legitimately need).
"""

from __future__ import annotations

import builtins
import types
from typing import Any, Iterable

from repro.core.errors import CodeShippingError

__all__ = ["DEFAULT_ALLOWED_IMPORTS", "DENIED_BUILTINS", "RestrictedLoader"]

DEFAULT_ALLOWED_IMPORTS: tuple[str, ...] = (
    "__future__",
    "repro",
    "abc",
    "collections",
    "dataclasses",
    "enum",
    "functools",
    "itertools",
    "math",
    "random",
    "statistics",
    "string",
    "time",
    "typing",
    "numpy",
)

DENIED_BUILTINS: frozenset[str] = frozenset(
    {
        "open",
        "exec",
        "eval",
        "compile",
        "input",
        "breakpoint",
        "exit",
        "quit",
        "help",
        "memoryview",
        "vars",
        "globals",
        "locals",
    }
)


class RestrictedLoader:
    """Executes shipped source into isolated module namespaces."""

    def __init__(self, allowed_imports: Iterable[str] | None = None) -> None:
        self.allowed_imports = tuple(allowed_imports or DEFAULT_ALLOWED_IMPORTS)

    def _restricted_import(self, name: str, *args: Any, **kwargs: Any) -> Any:
        root = name.split(".", 1)[0]
        if root not in self.allowed_imports:
            raise CodeShippingError(
                f"shipped code may not import {name!r} "
                f"(allowed roots: {', '.join(self.allowed_imports)})"
            )
        return builtins.__import__(name, *args, **kwargs)

    def _build_builtins(self) -> dict[str, Any]:
        safe: dict[str, Any] = {}
        for name in dir(builtins):
            if name.startswith("_") and name not in ("__build_class__",):
                continue
            if name in DENIED_BUILTINS:
                continue
            safe[name] = getattr(builtins, name)
        safe["__import__"] = self._restricted_import
        safe["__build_class__"] = builtins.__build_class__
        safe["__name__"] = "builtins"
        return safe

    def execute(self, source: str, module_name: str) -> types.ModuleType:
        """Run *source* in a fresh module named *module_name*.

        The module is NOT installed in ``sys.modules`` — per-server code
        caches keep their own namespaces so lazy loading stays observable
        per server even inside one process.
        """
        module = types.ModuleType(module_name)
        module.__dict__["__builtins__"] = self._build_builtins()
        try:
            code = compile(source, filename=f"<codebase:{module_name}>", mode="exec")
            exec(code, module.__dict__)
        except CodeShippingError:
            raise
        except Exception as exc:
            raise CodeShippingError(f"shipped module {module_name!r} failed to execute: {exc}") from exc
        return module
