"""Lazy code loading (paper §2.1: codebase URL + on-demand class loading)."""

from repro.codeshipping.codebase import (
    SHIPPING_STAMP,
    CodeBase,
    CodeBaseRegistry,
    CodeCache,
)
from repro.codeshipping.loader import (
    DEFAULT_ALLOWED_IMPORTS,
    DENIED_BUILTINS,
    RestrictedLoader,
)
from repro.codeshipping.shipping import resolver_installed, shipping_stamp_of

__all__ = [
    "CodeBase",
    "CodeBaseRegistry",
    "CodeCache",
    "RestrictedLoader",
    "SHIPPING_STAMP",
    "DEFAULT_ALLOWED_IMPORTS",
    "DENIED_BUILTINS",
    "resolver_installed",
    "shipping_stamp_of",
]
