"""Codebases and lazy class loading (paper §2.1).

A :class:`CodeBase` is the JAR analogue: a named bundle of Python module
sources "zipped" together so that "all the classes and resources needed are
transported at a time".  The immutable ``codebase`` attribute of a naplet
points at one of these; naplet servers resolve classes against their local
:class:`CodeCache`, fetching the bundle from the :class:`CodeBaseRegistry`
(the codebase URL's host) *on demand and at the last moment possible* —
lazy loading.

Classes that should travel by codebase reference are *stamped*
(``CodeBase.add_class`` / ``CodeBase.load``): the serializer ships stamped
instances as ``(codebase, module, qualname, state)`` instead of by import
path, so deserialization exercises the cache-miss → fetch → execute path
even inside a single test process.
"""

from __future__ import annotations

import hashlib
import inspect
import sys
import threading
import textwrap
from typing import Any, Callable

from repro.codeshipping.loader import RestrictedLoader
from repro.core.errors import CodeShippingError
from repro.util.eventlog import EventLog

__all__ = [
    "CodeBase",
    "CodeBaseRegistry",
    "CodeCache",
    "SHIPPING_STAMP",
    "source_hash",
]

SHIPPING_STAMP = "__naplet_codebase__"


def source_hash(source: str) -> str:
    """Content address of one module source (code-hash negotiation).

    Both ends of a transfer compute this independently — the sender over
    its bundled source, the receiver over what it installed — so a hash
    match in the transfer exchange proves the destination already holds
    the exact module and the bundle need not ship again (DESIGN.md §6.7).
    """
    return hashlib.blake2b(source.encode("utf-8"), digest_size=16).hexdigest()


class CodeBase:
    """Named bundle of module sources plus the classes they export."""

    def __init__(self, name: str) -> None:
        if not name:
            raise CodeShippingError("codebase needs a non-empty name")
        self.name = name
        self._modules: dict[str, str] = {}
        self._hashes: dict[str, str] = {}  # module_key -> source_hash, lazy
        self._lock = threading.RLock()

    # -- authoring ---------------------------------------------------------- #

    def add_source(self, module_key: str, source: str) -> None:
        """Bundle *source* under *module_key* (overwrites are errors)."""
        with self._lock:
            if module_key in self._modules:
                raise CodeShippingError(
                    f"module {module_key!r} already bundled in codebase {self.name!r}"
                )
            self._modules[module_key] = textwrap.dedent(source)

    def add_class(self, cls: type) -> type:
        """Bundle the source of *cls* (the whole defining module) and stamp it.

        Instances of a stamped class are shipped by codebase reference, so
        destinations without the class fetch this bundle lazily.
        """
        module_key = cls.__module__
        with self._lock:
            if module_key not in self._modules:
                module = sys.modules.get(module_key)
                if module is None:
                    raise CodeShippingError(f"defining module {module_key!r} not importable")
                try:
                    source = inspect.getsource(module)
                except (OSError, TypeError) as exc:
                    raise CodeShippingError(
                        f"cannot capture source of module {module_key!r}: {exc}"
                    ) from exc
                self._modules[module_key] = source
        setattr(cls, SHIPPING_STAMP, (self.name, module_key, cls.__qualname__))
        return cls

    # -- inspection ----------------------------------------------------------- #

    def modules(self) -> dict[str, str]:
        with self._lock:
            return dict(self._modules)

    def source_of(self, module_key: str) -> str:
        with self._lock:
            try:
                return self._modules[module_key]
            except KeyError:
                raise CodeShippingError(
                    f"codebase {self.name!r} has no module {module_key!r}"
                ) from None

    def hash_of(self, module_key: str) -> str:
        """Content hash of one bundled module source, memoized.

        Sources are add-only (``add_source`` refuses overwrites), so the
        memo never goes stale.
        """
        with self._lock:
            digest = self._hashes.get(module_key)
            if digest is None:
                try:
                    source = self._modules[module_key]
                except KeyError:
                    raise CodeShippingError(
                        f"codebase {self.name!r} has no module {module_key!r}"
                    ) from None
                digest = self._hashes[module_key] = source_hash(source)
            return digest

    @property
    def total_bytes(self) -> int:
        """Transport size of the bundle (sum of encoded module sources)."""
        with self._lock:
            return sum(len(src.encode()) for src in self._modules.values())

    def __contains__(self, module_key: str) -> bool:
        with self._lock:
            return module_key in self._modules

    def __repr__(self) -> str:
        with self._lock:
            return f"<CodeBase {self.name!r} modules={sorted(self._modules)}>"


class CodeBaseRegistry:
    """Authoritative store of codebases — the 'codebase URL host'.

    One registry typically serves a whole virtual network; fetches from it
    are what the lazy-loading experiment meters.
    """

    def __init__(self) -> None:
        self._codebases: dict[str, CodeBase] = {}
        self._lock = threading.RLock()

    def create(self, name: str) -> CodeBase:
        with self._lock:
            if name in self._codebases:
                raise CodeShippingError(f"codebase {name!r} already registered")
            codebase = CodeBase(name)
            self._codebases[name] = codebase
            return codebase

    def add(self, codebase: CodeBase) -> None:
        with self._lock:
            if codebase.name in self._codebases:
                raise CodeShippingError(f"codebase {codebase.name!r} already registered")
            self._codebases[codebase.name] = codebase

    def get(self, name: str) -> CodeBase:
        with self._lock:
            try:
                return self._codebases[name]
            except KeyError:
                raise CodeShippingError(f"unknown codebase: {name!r}") from None

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._codebases)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._codebases


# Type of the hook a server installs to observe/account codebase fetches:
# called with (codebase_name, module_key, nbytes) after each registry fetch.
FetchObserver = Callable[[str, str, int], None]


class CodeCache:
    """Per-server cache of executed codebase modules.

    ``resolve`` is the lazy-loading entry point used during naplet
    deserialization: cache hit returns immediately; miss fetches the module
    source from the registry (invoking the fetch observer so the transport
    meter can account the transfer), executes it with the restricted
    loader, and caches the namespace.
    """

    def __init__(
        self,
        registry: CodeBaseRegistry,
        loader: RestrictedLoader | None = None,
        fetch_observer: FetchObserver | None = None,
        event_log: EventLog | None = None,
    ) -> None:
        self._registry = registry
        self._loader = loader or RestrictedLoader()
        self._modules: dict[tuple[str, str], Any] = {}
        self._hashes: dict[tuple[str, str], str] = {}  # hash of each installed source
        self._lock = threading.RLock()
        self._fetch_observer = fetch_observer
        self.events = event_log if event_log is not None else EventLog()
        self.hits = 0
        self.misses = 0

    def install_source(self, codebase_name: str, module_key: str, source: str) -> None:
        """Pre-install a module (eager shipping: code arrived with the naplet)."""
        key = (codebase_name, module_key)
        with self._lock:
            if key in self._modules:
                return
            module = self._loader.execute(source, f"napletship.{codebase_name}.{module_key}")
            self._modules[key] = module
            self._hashes[key] = source_hash(source)

    def resolve(self, codebase_name: str, module_key: str, qualname: str) -> type:
        key = (codebase_name, module_key)
        with self._lock:
            module = self._modules.get(key)
            if module is not None:
                self.hits += 1
                self.events.record(
                    "codeshipping-cache-hit", codebase=codebase_name, module=module_key
                )
            else:
                self.misses += 1
                codebase = self._registry.get(codebase_name)
                source = codebase.source_of(module_key)
                nbytes = len(source.encode())
                self.events.record(
                    "codeshipping-cache-miss",
                    codebase=codebase_name,
                    module=module_key,
                    bytes=nbytes,
                )
                if self._fetch_observer is not None:
                    self._fetch_observer(codebase_name, module_key, nbytes)
                module = self._loader.execute(
                    source, f"napletship.{codebase_name}.{module_key}"
                )
                self._modules[key] = module
                self._hashes[key] = source_hash(source)
        target: Any = module
        for part in qualname.split("."):
            try:
                target = getattr(target, part)
            except AttributeError:
                raise CodeShippingError(
                    f"codebase {codebase_name!r} module {module_key!r} "
                    f"defines no {qualname!r}"
                ) from None
        if not isinstance(target, type):
            raise CodeShippingError(f"{qualname!r} in {module_key!r} is not a class")
        # Stamp the reconstructed class too, so re-serialization at this
        # server ships it onward by codebase reference again.
        setattr(target, SHIPPING_STAMP, (codebase_name, module_key, qualname))
        return target

    def cached_modules(self) -> list[tuple[str, str]]:
        with self._lock:
            return sorted(self._modules)

    # -- code-hash negotiation (DESIGN.md §6.7) -------------------------- #

    def holds(self, codebase_name: str, module_key: str, digest: str) -> bool:
        """True when this cache holds *exactly* the announced module source.

        The receiving side of a transfer verifies each ``code_refs`` entry
        with this before trusting that a skipped bundle is resolvable.
        """
        with self._lock:
            return self._hashes.get((codebase_name, module_key)) == digest

    def known_hashes(self) -> list[str]:
        """Content hashes of every installed module (for transfer acks)."""
        with self._lock:
            return sorted(self._hashes.values())
