"""Shipping hooks connecting codebases to pickle.

Instances of stamped classes (see :mod:`repro.codeshipping.codebase`) are
reduced to ``(_reconstruct_shipped, (codebase, module, qualname), state)``
instead of a by-import-path class reference.  ``_reconstruct_shipped`` runs
on the destination during unpickling and resolves the class through the
*current resolver* — a thread-local the deserializing server installs around
``loads`` — so cache misses trigger a lazy codebase fetch at exactly the
moment the paper prescribes: on demand, at the last moment possible.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Iterator

from repro.codeshipping.codebase import SHIPPING_STAMP, CodeCache
from repro.core.errors import CodeShippingError

__all__ = [
    "shipping_stamp_of",
    "current_resolver",
    "resolver_installed",
    "_reconstruct_shipped",
]

_local = threading.local()


def shipping_stamp_of(obj: Any) -> tuple[str, str, str] | None:
    """The (codebase, module, qualname) stamp of *obj*'s class, if stamped.

    The stamp must live on the class itself (not inherited from a stamped
    base): a subclass someone forgot to bundle must not silently ship under
    its parent's identity.
    """
    cls = type(obj)
    stamp = cls.__dict__.get(SHIPPING_STAMP)
    if stamp is None:
        return None
    return stamp  # type: ignore[return-value]


@contextmanager
def resolver_installed(resolver: CodeCache) -> Iterator[None]:
    """Bind *resolver* as this thread's class resolver during unpickling."""
    previous = getattr(_local, "resolver", None)
    _local.resolver = resolver
    try:
        yield
    finally:
        _local.resolver = previous


def current_resolver() -> CodeCache | None:
    return getattr(_local, "resolver", None)


def _reconstruct_shipped(codebase: str, module_key: str, qualname: str) -> Any:
    """Unpickling entry point: build a bare instance of a shipped class."""
    resolver = current_resolver()
    if resolver is None:
        raise CodeShippingError(
            f"cannot reconstruct shipped class {qualname!r}: no code resolver "
            "installed on this thread (deserialize through NapletSerializer)"
        )
    cls = resolver.resolve(codebase, module_key, qualname)
    return cls.__new__(cls)
