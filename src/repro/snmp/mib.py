"""MIB tree with an RFC1213-like MIB-II layout.

A :class:`MibTree` maps OIDs to :class:`MibVariable` bindings and supports
the traversal primitives SNMP needs: exact ``get``, lexicographic
``get_next`` (the basis of walks), and access-checked ``set``.

:func:`build_mib2` lays out the classic MIB-II groups under
``1.3.6.1.2.1`` — system(1), interfaces(2), ip(4), tcp(6), udp(7) — plus a
small enterprise branch under ``1.3.6.1.4.1.9999`` exposing the load gauges
the network-management naplets collect.  Values are computed on read from a
:class:`~repro.snmp.device.ManagedDevice`, so the tree always reflects the
device's synthetic dynamics.
"""

from __future__ import annotations

import bisect
import threading
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.snmp.device import ManagedDevice
from repro.snmp.oid import OID

__all__ = ["Access", "MibVariable", "MibTree", "MIB2", "build_mib2", "WELL_KNOWN_NAMES"]

# The standard mib-2 root.
MIB2 = OID.parse("1.3.6.1.2.1")
_ENTERPRISE = OID.parse("1.3.6.1.4.1.9999.1")


class Access:
    READ_ONLY = "read-only"
    READ_WRITE = "read-write"


@dataclass
class MibVariable:
    """One leaf binding: name, access mode, and read/write functions."""

    oid: OID
    name: str
    reader: Callable[[], Any]
    writer: Callable[[Any], None] | None = None
    access: str = Access.READ_ONLY

    def read(self) -> Any:
        return self.reader()

    def write(self, value: Any) -> None:
        if self.access != Access.READ_WRITE or self.writer is None:
            raise PermissionError(f"{self.oid} ({self.name}) is {self.access}")
        self.writer(value)


class MibTree:
    """Sorted OID → variable store with get / get-next / set."""

    def __init__(self) -> None:
        self._variables: dict[OID, MibVariable] = {}
        self._sorted: list[OID] = []
        self._lock = threading.RLock()

    def register(self, variable: MibVariable) -> None:
        with self._lock:
            if variable.oid in self._variables:
                raise ValueError(f"duplicate OID: {variable.oid}")
            self._variables[variable.oid] = variable
            bisect.insort(self._sorted, variable.oid)

    def get(self, oid: OID) -> MibVariable | None:
        with self._lock:
            return self._variables.get(oid)

    def get_next(self, oid: OID) -> MibVariable | None:
        """First variable with OID strictly greater (lexicographic)."""
        with self._lock:
            index = bisect.bisect_right(self._sorted, oid)
            if index >= len(self._sorted):
                return None
            return self._variables[self._sorted[index]]

    def walk(self, root: OID | None = None) -> Iterator[MibVariable]:
        """All variables under *root* (or everything), in OID order."""
        with self._lock:
            oids = list(self._sorted)
        for oid in oids:
            if root is None or root.is_prefix_of(oid):
                variable = self.get(oid)
                if variable is not None:
                    yield variable

    def __len__(self) -> int:
        with self._lock:
            return len(self._sorted)

    def oids(self) -> list[OID]:
        with self._lock:
            return list(self._sorted)


# ---------------------------------------------------------------------- #
# MIB-II layout
# ---------------------------------------------------------------------- #

# Well-known names used throughout examples and experiments.
WELL_KNOWN_NAMES: dict[str, str] = {
    "sysDescr": "1.3.6.1.2.1.1.1.0",
    "sysUpTime": "1.3.6.1.2.1.1.3.0",
    "sysContact": "1.3.6.1.2.1.1.4.0",
    "sysName": "1.3.6.1.2.1.1.5.0",
    "sysLocation": "1.3.6.1.2.1.1.6.0",
    "ifNumber": "1.3.6.1.2.1.2.1.0",
    "ipInReceives": "1.3.6.1.2.1.4.3.0",
    "ipOutRequests": "1.3.6.1.2.1.4.10.0",
    "tcpActiveOpens": "1.3.6.1.2.1.6.5.0",
    "tcpCurrEstab": "1.3.6.1.2.1.6.9.0",
    "udpInDatagrams": "1.3.6.1.2.1.7.1.0",
    "cpuLoad": "1.3.6.1.4.1.9999.1.1.0",
}


def build_mib2(device: ManagedDevice) -> MibTree:
    """RFC1213-shaped tree over *device*'s synthetic state."""
    tree = MibTree()
    system = MIB2.child(1)
    interfaces = MIB2.child(2)
    ip = MIB2.child(4)
    tcp = MIB2.child(6)
    udp = MIB2.child(7)

    def ro(oid: OID, name: str, reader: Callable[[], Any]) -> None:
        tree.register(MibVariable(oid=oid, name=name, reader=reader))

    def rw(oid: OID, name: str, field: str) -> None:
        tree.register(
            MibVariable(
                oid=oid,
                name=name,
                reader=lambda: device.get_field(field),
                writer=lambda v: device.set_field(field, v),
                access=Access.READ_WRITE,
            )
        )

    # system group (scalars carry the conventional .0 instance suffix)
    ro(system.child(1, 0), "sysDescr", lambda: device.profile.description)
    ro(system.child(2, 0), "sysObjectID", lambda: str(_ENTERPRISE))
    ro(system.child(3, 0), "sysUpTime", device.sys_uptime_ticks)
    rw(system.child(4, 0), "sysContact", "sysContact")
    rw(system.child(5, 0), "sysName", "sysName")
    rw(system.child(6, 0), "sysLocation", "sysLocation")

    # interfaces group: ifNumber + ifTable(2).ifEntry(1).column.index
    ro(interfaces.child(1, 0), "ifNumber", lambda: device.n_interfaces)
    if_entry = interfaces.child(2, 1)
    for i in range(device.n_interfaces):
        idx = i + 1  # SNMP interface indices are 1-based
        ro(if_entry.child(1, idx), f"ifIndex.{idx}", lambda idx=idx: idx)
        ro(
            if_entry.child(2, idx),
            f"ifDescr.{idx}",
            lambda i=i: f"eth{i}",
        )
        ro(
            if_entry.child(5, idx),
            f"ifSpeed.{idx}",
            lambda: device.profile.interface_speed,
        )
        ro(
            if_entry.child(8, idx),
            f"ifOperStatus.{idx}",
            lambda i=i: device.if_oper_status(i),
        )
        ro(
            if_entry.child(10, idx),
            f"ifInOctets.{idx}",
            lambda i=i: device.if_in_octets(i),
        )
        ro(
            if_entry.child(11, idx),
            f"ifInUcastPkts.{idx}",
            lambda i=i: device.if_in_packets(i),
        )
        ro(
            if_entry.child(16, idx),
            f"ifOutOctets.{idx}",
            lambda i=i: device.if_out_octets(i),
        )

    # ip group
    ro(ip.child(1, 0), "ipForwarding", lambda: 2)  # not forwarding
    ro(ip.child(3, 0), "ipInReceives", device.ip_in_receives)
    ro(ip.child(10, 0), "ipOutRequests", device.ip_out_requests)

    # tcp group
    ro(tcp.child(5, 0), "tcpActiveOpens", device.tcp_active_opens)
    ro(tcp.child(9, 0), "tcpCurrEstab", device.tcp_curr_estab)

    # udp group
    ro(udp.child(1, 0), "udpInDatagrams", device.udp_in_datagrams)

    # enterprise branch: load gauges the MAN naplets diagnose with
    ro(_ENTERPRISE.child(1, 0), "cpuLoad", device.cpu_load)

    return tree
