"""Simulated SNMP/MIB substrate (paper §6 dependency).

Per-device :class:`ManagedDevice` state with synthetic dynamics, an
RFC1213-like MIB-II tree, community-authenticated :class:`SnmpAgent`
daemons, network endpoints for remote polling, and the conventional
centralized :class:`ManagementStation` baseline.
"""

from repro.snmp.agent import SNMP_FRAME_KIND, SnmpAgent, SnmpEndpoint, snmp_urn
from repro.snmp.device import DeviceProfile, ManagedDevice
from repro.snmp.mib import (
    MIB2,
    Access,
    MibTree,
    MibVariable,
    WELL_KNOWN_NAMES,
    build_mib2,
)
from repro.snmp.oid import OID
from repro.snmp.protocol import (
    ErrorStatus,
    GetBulkRequest,
    GetNextRequest,
    GetRequest,
    SetRequest,
    SnmpResponse,
    VarBind,
    approx_ber_size,
)
from repro.snmp.station import ManagementStation
from repro.snmp.trap import (
    TRAP_FRAME_KIND,
    Trap,
    TrapSender,
    TrapSink,
    TrapType,
    trap_sink_urn,
)

__all__ = [
    "OID",
    "ManagedDevice",
    "DeviceProfile",
    "MibTree",
    "MibVariable",
    "Access",
    "MIB2",
    "WELL_KNOWN_NAMES",
    "build_mib2",
    "SnmpAgent",
    "SnmpEndpoint",
    "snmp_urn",
    "SNMP_FRAME_KIND",
    "ManagementStation",
    "Trap",
    "TrapType",
    "TrapSender",
    "TrapSink",
    "trap_sink_urn",
    "TRAP_FRAME_KIND",
    "GetRequest",
    "GetNextRequest",
    "GetBulkRequest",
    "SetRequest",
    "SnmpResponse",
    "VarBind",
    "ErrorStatus",
    "approx_ber_size",
]
