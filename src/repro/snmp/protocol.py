"""SNMP-shaped PDUs (the subset the paper's workloads need).

Get / GetNext / GetBulk / Set requests and the Response PDU, with community
-string authentication and the classic v1 error statuses.  Encoding is
pickle (both the agent baseline and the naplet path use the same encoding,
so traffic *ratios* between the approaches stay meaningful); an approximate
BER size is also computable for reporting absolute-ish byte counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.snmp.oid import OID

__all__ = [
    "ErrorStatus",
    "VarBind",
    "GetRequest",
    "GetNextRequest",
    "GetBulkRequest",
    "SetRequest",
    "SnmpResponse",
    "approx_ber_size",
]


class ErrorStatus:
    NO_ERROR = 0
    TOO_BIG = 1
    NO_SUCH_NAME = 2
    BAD_VALUE = 3
    READ_ONLY = 4
    GEN_ERR = 5
    AUTH_FAILURE = 16  # v2c-style; surfaced for bad communities


@dataclass(frozen=True)
class VarBind:
    """One (OID, value) pair."""

    oid: OID
    value: Any = None


@dataclass(frozen=True)
class GetRequest:
    community: str
    oids: tuple[OID, ...]


@dataclass(frozen=True)
class GetNextRequest:
    community: str
    oids: tuple[OID, ...]


@dataclass(frozen=True)
class GetBulkRequest:
    community: str
    oids: tuple[OID, ...]
    non_repeaters: int = 0
    max_repetitions: int = 10


@dataclass(frozen=True)
class SetRequest:
    community: str
    bindings: tuple[VarBind, ...]


@dataclass(frozen=True)
class SnmpResponse:
    bindings: tuple[VarBind, ...] = ()
    error_status: int = ErrorStatus.NO_ERROR
    error_index: int = 0

    @property
    def ok(self) -> bool:
        return self.error_status == ErrorStatus.NO_ERROR

    def values(self) -> list[Any]:
        return [b.value for b in self.bindings]


def _value_size(value: Any) -> int:
    if value is None:
        return 2
    if isinstance(value, bool):
        return 3
    if isinstance(value, int):
        size = 3
        v = abs(value)
        while v >= 256:
            v >>= 8
            size += 1
        return size
    if isinstance(value, float):
        return 10
    return 2 + len(str(value).encode())


def approx_ber_size(pdu: Any) -> int:
    """Rough BER-encoded octet count of a PDU, for absolute reporting."""
    size = 10  # message header + version
    community = getattr(pdu, "community", None)
    if community is not None:
        size += 2 + len(community.encode())
    size += 12  # PDU header, request-id, error fields
    oids = getattr(pdu, "oids", None)
    if oids is not None:
        for oid in oids:
            size += oid.encoded_size() + 2  # null value placeholder
    bindings = getattr(pdu, "bindings", None)
    if bindings is not None:
        for binding in bindings:
            size += binding.oid.encoded_size() + _value_size(binding.value)
    return size
