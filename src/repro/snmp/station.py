"""Conventional centralized management station — the CNMP baseline.

The paper's §6 motivation: "a management station communicates to the SNMP
agents via a number of fine-grained get and set operations for MIB
parameters.  This centralized micro-management approach for large networks
tends to generate heavy traffic between the management station and network
devices and excessive computational overhead on the management station."

:class:`ManagementStation` is exactly that client/server pole of the
comparison: it polls every device over the (metered) network, one
round-trip per OID in fine-grained mode, or one batched Get per device for
a fairer baseline; MIB walks cost one round-trip per get-next step.
"""

from __future__ import annotations

import pickle
from typing import Any

from repro.core.errors import NapletCommunicationError
from repro.snmp.agent import SNMP_FRAME_KIND, snmp_urn
from repro.snmp.oid import OID
from repro.snmp.protocol import (
    GetNextRequest,
    GetRequest,
    SetRequest,
    SnmpResponse,
    VarBind,
)
from repro.transport.base import Frame, Transport, urn_of

__all__ = ["ManagementStation"]


class ManagementStation:
    """Central poller speaking SNMP over the network to device endpoints."""

    def __init__(
        self,
        transport: Transport,
        hostname: str = "station",
        community: str = "public",
        write_community: str = "private",
    ) -> None:
        self.transport = transport
        self.hostname = hostname
        self.urn = urn_of(hostname)
        self.community = community
        self.write_community = write_community
        self.requests_sent = 0

    # -- wire ----------------------------------------------------------------- #

    def _round_trip(self, device_host: str, pdu: Any) -> SnmpResponse:
        frame = Frame(
            kind=SNMP_FRAME_KIND,
            source=self.urn,
            dest=snmp_urn(device_host),
            payload=pickle.dumps(pdu),
        )
        self.requests_sent += 1
        reply = self.transport.request(frame)
        response = pickle.loads(reply)
        if not isinstance(response, SnmpResponse):
            raise NapletCommunicationError(
                f"malformed SNMP response from {device_host}"
            )
        return response

    # -- operations --------------------------------------------------------------- #

    def get(self, device_host: str, oids: list[OID | str], batch: bool = False) -> dict[str, Any]:
        """Read *oids* from one device.

        ``batch=False`` (default) issues one Get per OID — the paper's
        fine-grained micro-management; ``batch=True`` issues a single
        multi-varbind Get.
        """
        parsed = [OID.parse(o) for o in oids]
        values: dict[str, Any] = {}
        if batch:
            response = self._round_trip(device_host, GetRequest(self.community, tuple(parsed)))
            if response.ok:
                for binding in response.bindings:
                    values[str(binding.oid)] = binding.value
            return values
        for oid in parsed:
            response = self._round_trip(device_host, GetRequest(self.community, (oid,)))
            if response.ok and response.bindings:
                values[str(oid)] = response.bindings[0].value
        return values

    def poll_all(
        self,
        device_hosts: list[str],
        oids: list[OID | str],
        batch: bool = False,
    ) -> dict[str, dict[str, Any]]:
        """One management round over every device (sequential, centralized)."""
        return {host: self.get(host, oids, batch=batch) for host in device_hosts}

    def walk(self, device_host: str, root: OID | str) -> list[VarBind]:
        """MIB walk over the network: one round-trip per get-next step."""
        root = OID.parse(root)
        cursor = root
        out: list[VarBind] = []
        while True:
            response = self._round_trip(
                device_host, GetNextRequest(self.community, (cursor,))
            )
            if not response.ok or not response.bindings:
                break
            binding = response.bindings[0]
            if not root.is_prefix_of(binding.oid):
                break
            out.append(binding)
            cursor = binding.oid
        return out

    def set(self, device_host: str, oid: OID | str, value: Any) -> SnmpResponse:
        binding = VarBind(oid=OID.parse(oid), value=value)
        return self._round_trip(
            device_host, SetRequest(self.write_community, (binding,))
        )
