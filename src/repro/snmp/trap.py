"""SNMP traps: asynchronous device-to-station notifications.

Polling (get/getnext) is only half of SNMP management; devices also *push*
traps when something happens — an interface going down, a cold start, an
enterprise-specific alarm.  This module provides:

- :class:`Trap` — the notification PDU (generic type OID + varbinds);
- :class:`TrapSender` — the device-side emitter, wired to a managed device
  so operational changes (``link_down``/``link_up``) both mutate the MIB
  and notify the sink;
- :class:`TrapSink` — the station-side receiver: a transport endpoint that
  queues traps and invokes an optional callback, which is what trap-driven
  agent dispatch (see :mod:`repro.man.reactive`) hooks into.

Traps ride the same metered transport as everything else, so "management
by exception" experiments can compare trap traffic against polling.
"""

from __future__ import annotations

import pickle
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.core.errors import NapletCommunicationError
from repro.snmp.device import ManagedDevice
from repro.snmp.oid import OID
from repro.snmp.protocol import VarBind
from repro.transport.base import Frame, Transport

__all__ = [
    "TRAP_FRAME_KIND",
    "TrapType",
    "Trap",
    "TrapSender",
    "TrapSink",
    "trap_sink_urn",
]

TRAP_FRAME_KIND = "snmp-trap"


def trap_sink_urn(hostname: str) -> str:
    return f"trapsink://{hostname}"


class TrapType:
    """Standard SNMPv2 notification OIDs plus our enterprise alarms."""

    COLD_START = OID.parse("1.3.6.1.6.3.1.1.5.1")
    LINK_DOWN = OID.parse("1.3.6.1.6.3.1.1.5.3")
    LINK_UP = OID.parse("1.3.6.1.6.3.1.1.5.4")
    CPU_HIGH = OID.parse("1.3.6.1.4.1.9999.0.1")  # enterprise-specific


@dataclass(frozen=True)
class Trap:
    """One notification."""

    trap_type: OID
    source: str  # device hostname
    uptime_ticks: int
    varbinds: tuple[VarBind, ...] = ()
    sent_at: float = field(default_factory=time.time)

    def varbind(self, oid: OID | str) -> VarBind | None:
        oid = OID.parse(oid)
        for binding in self.varbinds:
            if binding.oid == oid:
                return binding
        return None


_IF_INDEX_OID = OID.parse("1.3.6.1.2.1.2.2.1.1")
_CPU_LOAD_OID = OID.parse("1.3.6.1.4.1.9999.1.1.0")


class TrapSender:
    """Device-side trap emitter."""

    def __init__(
        self,
        device: ManagedDevice,
        transport: Transport,
        sink_urn: str,
    ) -> None:
        self.device = device
        self.transport = transport
        self.sink_urn = sink_urn
        self.sent = 0

    def send(self, trap_type: OID, varbinds: tuple[VarBind, ...] = ()) -> None:
        trap = Trap(
            trap_type=trap_type,
            source=self.device.profile.hostname,
            uptime_ticks=self.device.sys_uptime_ticks(),
            varbinds=varbinds,
        )
        frame = Frame(
            kind=TRAP_FRAME_KIND,
            source=f"snmp://{trap.source}",
            dest=self.sink_urn,
            payload=pickle.dumps(trap),
        )
        try:
            self.transport.send(frame)
            self.sent += 1
        except NapletCommunicationError:
            # SNMP traps are unacknowledged datagrams: loss is silent.
            return

    # -- operational events that both mutate the MIB and notify ---------- #

    def cold_start(self) -> None:
        self.send(TrapType.COLD_START)

    def link_down(self, if_index: int) -> None:
        """Take interface *if_index* (1-based) down and notify the sink."""
        self.device.set_interface_down(if_index - 1)
        self.send(
            TrapType.LINK_DOWN,
            (VarBind(_IF_INDEX_OID.child(if_index), if_index),),
        )

    def link_up(self, if_index: int) -> None:
        self.device.set_interface_up(if_index - 1)
        self.send(
            TrapType.LINK_UP,
            (VarBind(_IF_INDEX_OID.child(if_index), if_index),),
        )

    def cpu_high(self) -> None:
        self.send(
            TrapType.CPU_HIGH,
            (VarBind(_CPU_LOAD_OID, self.device.cpu_load()),),
        )


class TrapSink:
    """Station-side trap receiver: queue + optional dispatch callback.

    The callback runs on the delivering thread and must be quick; reactive
    dispatchers should enqueue work (see :mod:`repro.man.reactive`).
    """

    def __init__(
        self,
        transport: Transport,
        hostname: str,
        callback: Callable[[Trap], None] | None = None,
    ) -> None:
        self.transport = transport
        self.urn = trap_sink_urn(hostname)
        self._queue: "queue.Queue[Trap]" = queue.Queue()
        self._callback = callback
        self._lock = threading.Lock()
        self.received = 0
        transport.register(self.urn, self._handle)

    def _handle(self, frame: Frame) -> None:
        trap: Trap = pickle.loads(frame.payload)
        with self._lock:
            self.received += 1
        self._queue.put(trap)
        if self._callback is not None:
            self._callback(trap)
        return None

    def next_trap(self, timeout: float | None = 10.0) -> Trap:
        return self._queue.get(timeout=timeout)

    def try_next(self) -> Trap | None:
        try:
            return self._queue.get_nowait()
        except queue.Empty:
            return None

    def close(self) -> None:
        self.transport.unregister(self.urn)
