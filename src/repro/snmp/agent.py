"""The per-device SNMP agent (daemon) and its network endpoint.

Every managed device runs an :class:`SnmpAgent` locally — the paper's
"SNMP daemon (i.e. SNMP agent) running locally to collect network
parameters and store them in a MIB".  It answers Get/GetNext/GetBulk/Set
PDUs against the device's MIB tree after checking the community string.

Local callers (the NetManagement privileged service co-resident with a
NapletServer) invoke :meth:`SnmpAgent.handle` directly — on-site access,
no network traffic.  Remote callers (the conventional management station)
go through :class:`SnmpEndpoint`, which registers ``snmp://<host>`` on the
transport so every request/response is metered like any other traffic.
"""

from __future__ import annotations

import pickle

from repro.snmp.device import ManagedDevice
from repro.snmp.mib import MibTree, build_mib2
from repro.snmp.oid import OID
from repro.snmp.protocol import (
    ErrorStatus,
    GetBulkRequest,
    GetNextRequest,
    GetRequest,
    SetRequest,
    SnmpResponse,
    VarBind,
)
from repro.transport.base import Frame, Transport

__all__ = ["SnmpAgent", "SnmpEndpoint", "snmp_urn"]

SNMP_FRAME_KIND = "snmp-pdu"


def snmp_urn(hostname: str) -> str:
    return f"snmp://{hostname}"


class SnmpAgent:
    """Community-authenticated PDU processor over one device's MIB."""

    def __init__(
        self,
        device: ManagedDevice,
        mib: MibTree | None = None,
        community_ro: str = "public",
        community_rw: str = "private",
    ) -> None:
        self.device = device
        self.mib = mib if mib is not None else build_mib2(device)
        self.community_ro = community_ro
        self.community_rw = community_rw
        self.requests_served = 0

    # -- auth -------------------------------------------------------------- #

    def _authorized(self, community: str, write: bool) -> bool:
        if write:
            return community == self.community_rw
        return community in (self.community_ro, self.community_rw)

    # -- dispatch ------------------------------------------------------------ #

    def handle(self, pdu: object) -> SnmpResponse:
        self.requests_served += 1
        if isinstance(pdu, GetRequest):
            return self._auth_then(pdu.community, False, lambda: self._get(pdu))
        if isinstance(pdu, GetNextRequest):
            return self._auth_then(pdu.community, False, lambda: self._get_next(pdu))
        if isinstance(pdu, GetBulkRequest):
            return self._auth_then(pdu.community, False, lambda: self._get_bulk(pdu))
        if isinstance(pdu, SetRequest):
            return self._auth_then(pdu.community, True, lambda: self._set(pdu))
        return SnmpResponse(error_status=ErrorStatus.GEN_ERR)

    def _auth_then(self, community: str, write: bool, action) -> SnmpResponse:
        if not self._authorized(community, write):
            return SnmpResponse(error_status=ErrorStatus.AUTH_FAILURE)
        return action()

    # -- operations ------------------------------------------------------------ #

    def _get(self, pdu: GetRequest) -> SnmpResponse:
        bindings: list[VarBind] = []
        for index, oid in enumerate(pdu.oids, start=1):
            variable = self.mib.get(oid)
            if variable is None:
                return SnmpResponse(
                    error_status=ErrorStatus.NO_SUCH_NAME, error_index=index
                )
            bindings.append(VarBind(oid=oid, value=variable.read()))
        return SnmpResponse(bindings=tuple(bindings))

    def _get_next(self, pdu: GetNextRequest) -> SnmpResponse:
        bindings: list[VarBind] = []
        for index, oid in enumerate(pdu.oids, start=1):
            variable = self.mib.get_next(oid)
            if variable is None:
                return SnmpResponse(
                    error_status=ErrorStatus.NO_SUCH_NAME, error_index=index
                )
            bindings.append(VarBind(oid=variable.oid, value=variable.read()))
        return SnmpResponse(bindings=tuple(bindings))

    def _get_bulk(self, pdu: GetBulkRequest) -> SnmpResponse:
        bindings: list[VarBind] = []
        for position, oid in enumerate(pdu.oids):
            if position < pdu.non_repeaters:
                variable = self.mib.get_next(oid)
                if variable is not None:
                    bindings.append(VarBind(oid=variable.oid, value=variable.read()))
                continue
            cursor = oid
            for _ in range(pdu.max_repetitions):
                variable = self.mib.get_next(cursor)
                if variable is None:
                    break
                bindings.append(VarBind(oid=variable.oid, value=variable.read()))
                cursor = variable.oid
        return SnmpResponse(bindings=tuple(bindings))

    def _set(self, pdu: SetRequest) -> SnmpResponse:
        staged: list[tuple[object, object]] = []
        for index, binding in enumerate(pdu.bindings, start=1):
            variable = self.mib.get(binding.oid)
            if variable is None:
                return SnmpResponse(
                    error_status=ErrorStatus.NO_SUCH_NAME, error_index=index
                )
            staged.append((variable, binding.value))
        for index, (variable, value) in enumerate(staged, start=1):
            try:
                variable.write(value)  # type: ignore[attr-defined]
            except PermissionError:
                return SnmpResponse(
                    error_status=ErrorStatus.READ_ONLY, error_index=index
                )
            except (TypeError, ValueError, KeyError):
                return SnmpResponse(
                    error_status=ErrorStatus.BAD_VALUE, error_index=index
                )
        return SnmpResponse(bindings=pdu.bindings)

    # -- convenience: a full walk ------------------------------------------------ #

    def walk(self, root: OID | str, community: str = "public") -> list[VarBind]:
        """Repeated get-next under *root* (local, unmetered)."""
        root = OID.parse(root)
        if not self._authorized(community, write=False):
            return []
        out: list[VarBind] = []
        cursor = root
        while True:
            variable = self.mib.get_next(cursor)
            if variable is None or not root.is_prefix_of(variable.oid):
                break
            out.append(VarBind(oid=variable.oid, value=variable.read()))
            cursor = variable.oid
        return out


class SnmpEndpoint:
    """Network face of one agent: handles ``snmp-pdu`` frames."""

    def __init__(self, agent: SnmpAgent, transport: Transport, hostname: str) -> None:
        self.agent = agent
        self.transport = transport
        self.urn = snmp_urn(hostname)
        transport.register(self.urn, self._handle)

    def _handle(self, frame: Frame) -> bytes:
        pdu = pickle.loads(frame.payload)
        response = self.agent.handle(pdu)
        return pickle.dumps(response)

    def close(self) -> None:
        self.transport.unregister(self.urn)
