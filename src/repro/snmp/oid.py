"""Object identifiers.

SNMP names every managed variable with an OID — a dotted sequence of
integers ordered lexicographically.  ``get-next`` traversal (the basis of
MIB walks) depends on that ordering, so :class:`OID` is a total-ordered
value type with prefix/child helpers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = ["OID"]


@dataclass(frozen=True, order=True)
class OID:
    """Dotted object identifier, e.g. ``1.3.6.1.2.1.1.5.0``."""

    parts: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.parts:
            raise ValueError("OID cannot be empty")
        if any(p < 0 for p in self.parts):
            raise ValueError(f"OID arcs must be non-negative: {self.parts}")

    @classmethod
    def parse(cls, text: "str | OID | tuple[int, ...]") -> "OID":
        if isinstance(text, OID):
            return text
        if isinstance(text, tuple):
            return cls(text)
        text = text.strip().lstrip(".")
        try:
            return cls(tuple(int(p) for p in text.split(".")))
        except ValueError:
            raise ValueError(f"not an OID: {text!r}") from None

    # -- structure -------------------------------------------------------- #

    def child(self, *arcs: int) -> "OID":
        return OID(self.parts + arcs)

    def parent(self) -> "OID | None":
        if len(self.parts) == 1:
            return None
        return OID(self.parts[:-1])

    def is_prefix_of(self, other: "OID") -> bool:
        """True when *other* lies under this OID (strictly or equal)."""
        return other.parts[: len(self.parts)] == self.parts

    def strictly_contains(self, other: "OID") -> bool:
        return len(other.parts) > len(self.parts) and self.is_prefix_of(other)

    def __len__(self) -> int:
        return len(self.parts)

    def __iter__(self) -> Iterator[int]:
        return iter(self.parts)

    # -- rendering ----------------------------------------------------------- #

    def __str__(self) -> str:
        return ".".join(str(p) for p in self.parts)

    def __repr__(self) -> str:
        return f"OID({str(self)!r})"

    @property
    def dotted(self) -> str:
        return str(self)

    def encoded_size(self) -> int:
        """Approximate BER-encoded size in bytes (identifier octets)."""
        size = 2  # tag + length
        for index, arc in enumerate(self.parts):
            if index == 1:
                continue  # first two arcs share one octet
            octets = 1
            while arc >= 128:
                arc >>= 7
                octets += 1
            size += octets
        return size
