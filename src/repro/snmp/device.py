"""Managed devices with synthetic dynamics.

The paper evaluates MAN against real devices running SNMP daemons; we have
none, so a :class:`ManagedDevice` produces RFC1213-shaped data from a
deterministic rate model: every counter (interface octets, IP/TCP/UDP
datagrams) grows linearly with elapsed time at a per-device, per-counter
rate drawn from a seeded RNG, plus small deterministic jitter.  Gauges
(CPU load, established connections) oscillate around a base level.

Determinism matters: two reads of the same device at the same virtual
moment agree, and experiments are reproducible across runs when they pass
an explicit ``now`` instead of wall-clock time.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass

import numpy as np

__all__ = ["DeviceProfile", "ManagedDevice"]


@dataclass(frozen=True)
class DeviceProfile:
    """Static description of one device's hardware/identity."""

    hostname: str
    n_interfaces: int = 2
    description: str = "Naplet reproduction managed device"
    contact: str = "admin@example.net"
    location: str = "simulated rack"
    interface_speed: int = 100_000_000  # bits/s


class ManagedDevice:
    """Synthetic device state behind one SNMP agent."""

    def __init__(self, profile: DeviceProfile, seed: int | None = None) -> None:
        self.profile = profile
        if seed is None:
            seed = abs(hash(profile.hostname)) % (2**31)
        self._rng = np.random.default_rng(seed)
        self._born = time.monotonic()
        n = profile.n_interfaces
        # Per-interface octet rates (bytes/s) and packet rates.
        self._in_rates = self._rng.uniform(1e3, 5e5, size=n)
        self._out_rates = self._rng.uniform(1e3, 5e5, size=n)
        self._pkt_rates = self._rng.uniform(10, 5e3, size=n)
        self._ip_rate = float(self._rng.uniform(50, 1e4))
        self._tcp_open_rate = float(self._rng.uniform(0.1, 20))
        self._udp_rate = float(self._rng.uniform(10, 2e3))
        self._load_base = float(self._rng.uniform(0.05, 0.7))
        self._estab_base = int(self._rng.integers(2, 200))
        self._oper_status = np.ones(n, dtype=int)  # 1=up, 2=down
        self._writable: dict[str, str] = {
            "sysContact": profile.contact,
            "sysName": profile.hostname,
            "sysLocation": profile.location,
        }
        self._lock = threading.RLock()

    # -- time base -------------------------------------------------------- #

    def _elapsed(self, now: float | None) -> float:
        reference = now if now is not None else (time.monotonic() - self._born)
        return max(0.0, reference)

    # -- counters (monotone) ------------------------------------------------ #

    def if_in_octets(self, index: int, now: float | None = None) -> int:
        t = self._elapsed(now)
        return int(self._in_rates[index] * t)

    def if_out_octets(self, index: int, now: float | None = None) -> int:
        t = self._elapsed(now)
        return int(self._out_rates[index] * t)

    def if_in_packets(self, index: int, now: float | None = None) -> int:
        return int(self._pkt_rates[index] * self._elapsed(now))

    def ip_in_receives(self, now: float | None = None) -> int:
        return int(self._ip_rate * self._elapsed(now))

    def ip_out_requests(self, now: float | None = None) -> int:
        return int(self._ip_rate * 0.9 * self._elapsed(now))

    def tcp_active_opens(self, now: float | None = None) -> int:
        return int(self._tcp_open_rate * self._elapsed(now))

    def udp_in_datagrams(self, now: float | None = None) -> int:
        return int(self._udp_rate * self._elapsed(now))

    def sys_uptime_ticks(self, now: float | None = None) -> int:
        """Hundredths of a second, the SNMP TimeTicks unit."""
        return int(self._elapsed(now) * 100)

    # -- gauges (oscillating) -------------------------------------------------- #

    def cpu_load(self, now: float | None = None) -> float:
        t = self._elapsed(now)
        wobble = 0.15 * math.sin(t / 7.0) + 0.05 * math.sin(t / 1.3)
        return round(min(1.0, max(0.0, self._load_base + wobble)), 4)

    def tcp_curr_estab(self, now: float | None = None) -> int:
        t = self._elapsed(now)
        return max(0, int(self._estab_base * (1 + 0.3 * math.sin(t / 11.0))))

    def if_oper_status(self, index: int) -> int:
        with self._lock:
            return int(self._oper_status[index])

    def set_interface_down(self, index: int) -> None:
        with self._lock:
            self._oper_status[index] = 2

    def set_interface_up(self, index: int) -> None:
        with self._lock:
            self._oper_status[index] = 1

    # -- writable identity fields ------------------------------------------------ #

    def get_field(self, name: str) -> str:
        with self._lock:
            return self._writable[name]

    def set_field(self, name: str, value: str) -> None:
        with self._lock:
            if name not in self._writable:
                raise KeyError(name)
            self._writable[name] = str(value)

    @property
    def n_interfaces(self) -> int:
        return self.profile.n_interfaces

    def __repr__(self) -> str:
        return f"<ManagedDevice {self.profile.hostname!r} ifaces={self.n_interfaces}>"
