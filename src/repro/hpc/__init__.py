"""Distributed-computation workloads over the naplet space."""

from repro.hpc.naplet import (
    MonteCarloPiNaplet,
    ShardAggregateNaplet,
    combine_mean_reports,
    combine_pi_reports,
)
from repro.hpc.service import (
    DATASTORE_SERVICE,
    MATH_SERVICE,
    DataStore,
    MathService,
)

__all__ = [
    "MathService",
    "DataStore",
    "MATH_SERVICE",
    "DATASTORE_SERVICE",
    "MonteCarloPiNaplet",
    "ShardAggregateNaplet",
    "combine_pi_reports",
    "combine_mean_reports",
]
