"""Compute naplets: parallel computation via itineraries.

Two workloads exercising the "mobile agents for global computing" use the
paper inherits from its Traveler companion:

- :class:`MonteCarloPiNaplet` — embarrassingly parallel sampling: a Par
  itinerary spawns one child per host; each child asks the host's math
  service for its sample counts and reports a partial result home;
- :class:`ShardAggregateNaplet` — data-local aggregation: shards live in
  per-host DataStores; a Seq tour accumulates (sum, count) pairs and
  reports one global mean, or a Par fan-out reports partials.

Both return tiny summaries instead of raw data — the network-load argument
(§1 reason (a)) in computational clothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.listener import ListenerRef, NapletListener, ReportEnvelope
from repro.core.naplet import Naplet
from repro.hpc.service import DATASTORE_SERVICE, MATH_SERVICE
from repro.itinerary.itinerary import Itinerary
from repro.itinerary.operable import Operable
from repro.itinerary.pattern import ParPattern, SeqPattern

__all__ = [
    "MonteCarloPiNaplet",
    "ShardAggregateNaplet",
    "combine_pi_reports",
    "combine_mean_reports",
]


@dataclass(frozen=True)
class _ReportState(Operable):
    """Report selected state keys home as a dict."""

    keys: tuple[str, ...]

    def operate(self, naplet: Naplet) -> None:
        naplet.report_home({key: naplet.state.get(key) for key in self.keys})


class MonteCarloPiNaplet(Naplet):
    """Estimate pi by sampling on every host in parallel."""

    def __init__(
        self,
        name: str,
        servers: Sequence[str],
        samples_per_host: int,
        seed: int = 1234,
        listener: ListenerRef | None = None,
    ) -> None:
        super().__init__(name, listener=listener)
        self.samples_per_host = samples_per_host
        self.seed = seed
        itinerary = Itinerary(
            ParPattern.of_servers(
                list(servers),
                per_branch_action=_ReportState(("inside", "samples", "host")),
            )
        )
        self.set_itinerary(itinerary)

    def on_start(self) -> None:
        context = self.require_context()
        math = context.open_service(MATH_SERVICE)
        # Derive a per-agent seed from the clone heritage so children draw
        # independent streams deterministically.
        heritage = self.naplet_id.heritage
        seed = self.seed + sum(h * 1009**i for i, h in enumerate(heritage, 1))
        inside = math.monte_carlo_inside(self.samples_per_host, seed)
        self.state.set("inside", inside)
        self.state.set("samples", self.samples_per_host)
        self.state.set("host", context.hostname)
        self.travel()


def combine_pi_reports(listener: NapletListener, expected: int, timeout: float = 30.0) -> float:
    """Gather *expected* partial reports and return the pi estimate."""
    inside = 0
    samples = 0
    for envelope in listener.reports(expected, timeout=timeout):
        inside += envelope.payload["inside"]
        samples += envelope.payload["samples"]
    if samples == 0:
        raise ValueError("no samples gathered")
    return 4.0 * inside / samples


class ShardAggregateNaplet(Naplet):
    """Compute a global mean over per-host data shards.

    ``mode='seq'`` sends one agent around, accumulating (sum, count);
    ``mode='par'`` fans out children that each report a partial.
    """

    def __init__(
        self,
        name: str,
        servers: Sequence[str],
        shard_key: str,
        mode: str = "seq",
        listener: ListenerRef | None = None,
    ) -> None:
        super().__init__(name, listener=listener)
        self.shard_key = shard_key
        report = _ReportState(("sum", "count"))
        if mode == "seq":
            itinerary = Itinerary(
                SeqPattern.of_servers(list(servers), post_action=report)
            )
        elif mode == "par":
            itinerary = Itinerary(
                ParPattern.of_servers(list(servers), per_branch_action=report)
            )
        else:
            raise ValueError(f"mode must be 'seq' or 'par', got {mode!r}")
        self.mode = mode
        self.set_itinerary(itinerary)
        self.state.set("sum", 0.0)
        self.state.set("count", 0)

    def on_start(self) -> None:
        context = self.require_context()
        store = context.open_service(DATASTORE_SERVICE)
        if store.has(self.shard_key):
            partial_sum, partial_count = store.partial_sum(self.shard_key)
            self.state.set("sum", float(self.state.get("sum")) + partial_sum)
            self.state.set("count", int(self.state.get("count")) + partial_count)
        self.travel()


def combine_mean_reports(
    envelopes: list[ReportEnvelope],
) -> float:
    """Global mean from partial (sum, count) reports."""
    total = sum(e.payload["sum"] for e in envelopes)
    count = sum(e.payload["count"] for e in envelopes)
    if count == 0:
        raise ValueError("no data aggregated")
    return total / count
