"""Server-side stationary services for compute naplets (paper §2.2).

"Naplets for distributed high performance computing need access to various
math libraries" — these are the open (non-privileged) services a server
registers for them:

- :class:`MathService` — numpy-backed math routines callable via handler;
- :class:`DataStore`   — a host-local numpy shard (the data that is *at*
  the host, which is why the computation travels to it).
"""

from __future__ import annotations

import threading
from typing import Any

import numpy as np

__all__ = ["MathService", "DataStore", "MATH_SERVICE", "DATASTORE_SERVICE"]

MATH_SERVICE = "math"
DATASTORE_SERVICE = "datastore"


class MathService:
    """Open math-library service: stateless numpy routines."""

    def rng(self, seed: int) -> np.random.Generator:
        return np.random.default_rng(seed)

    def monte_carlo_inside(self, samples: int, seed: int) -> int:
        """Points of *samples* uniform draws landing inside the unit circle."""
        rng = self.rng(seed)
        xy = rng.random((samples, 2))
        return int(np.count_nonzero((xy**2).sum(axis=1) <= 1.0))

    def matmul(self, a: Any, b: Any) -> np.ndarray:
        return np.asarray(a) @ np.asarray(b)

    def solve(self, a: Any, b: Any) -> np.ndarray:
        return np.linalg.solve(np.asarray(a), np.asarray(b))

    def mean(self, values: Any) -> float:
        return float(np.mean(np.asarray(values)))

    def quantile(self, values: Any, q: float) -> float:
        return float(np.quantile(np.asarray(values), q))


class DataStore:
    """Host-local named numpy shards."""

    def __init__(self) -> None:
        self._shards: dict[str, np.ndarray] = {}
        self._lock = threading.RLock()

    def put(self, key: str, values: Any) -> None:
        with self._lock:
            self._shards[key] = np.asarray(values)

    def get(self, key: str) -> np.ndarray:
        with self._lock:
            return self._shards[key]

    def has(self, key: str) -> bool:
        with self._lock:
            return key in self._shards

    def keys(self) -> list[str]:
        with self._lock:
            return sorted(self._shards)

    # Shard statistics computed on-site: the whole point of sending the
    # agent to the data instead of the data to the agent.
    def partial_sum(self, key: str) -> tuple[float, int]:
        with self._lock:
            shard = self._shards[key]
        return float(shard.sum()), int(shard.size)

    def partial_minmax(self, key: str) -> tuple[float, float]:
        with self._lock:
            shard = self._shards[key]
        return float(shard.min()), float(shard.max())
